"""Conflict-target extraction for race-free execution planning.

In the OP2 model (paper Section 3), two iteration-set elements *conflict*
exactly when they both modify the same target element through some
indirection — e.g. two edges incrementing the residual of a shared cell in
``res_calc``.  This module reduces a parallel loop's argument list to a
dense ``(n_elements, n_slots)`` integer array of *conflict targets*, with
targets of distinct (map → target-set) groups offset into disjoint index
ranges so a single coloring pass handles loops that race through several
different maps at once.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.access import Arg


def racing_slots(args: Sequence[Arg]) -> List[Tuple[object, int]]:
    """List of ``(map, slot)`` pairs through which the loop may race.

    A slot appears once per racing argument column; duplicates (the same
    map slot used by two INC arguments) are collapsed since they impose
    the same constraint.
    """
    seen = set()
    slots: List[Tuple[object, int]] = []
    for arg in args:
        if not arg.races:
            continue
        if arg.is_vector:
            indices: Iterable[int] = range(arg.map.arity)
        else:
            indices = (arg.index,)
        for idx in indices:
            key = (arg.map, idx)
            if key not in seen:
                seen.add(key)
                slots.append(key)
    return slots


def conflict_targets(args: Sequence[Arg], n_elements: int):
    """Build the conflict-target matrix for a loop's arguments.

    Returns
    -------
    targets:
        ``(n_elements, n_slots)`` int64 array, or ``None`` when the loop
        has no racing arguments (every element is independent — the
        "direct loop" case of the paper, e.g. ``save_soln``/``update``).
    extent:
        Size of the combined (offset) target index space.
    """
    slots = racing_slots(args)
    if not slots:
        return None, 0

    # Offset each distinct target set into its own index range so a shared
    # integer means a genuinely shared mesh element.
    offsets = {}
    extent = 0
    for map_, _ in slots:
        if map_.to_set not in offsets:
            offsets[map_.to_set] = extent
            extent += map_.to_set.total_size + int(
                getattr(map_.to_set, "nonexec_size", 0)
            )

    cols = []
    for map_, idx in slots:
        col = map_.values[:n_elements, idx].astype(np.int64, copy=True)
        col += offsets[map_.to_set]
        cols.append(col)
    targets = np.stack(cols, axis=1)
    return targets, extent


def is_valid_coloring(
    colors: np.ndarray, targets: np.ndarray | None
) -> bool:
    """Check that no two same-colored elements share a conflict target.

    Used by tests and as an internal assertion; vectorized via sorting so
    it stays usable on large meshes.
    """
    if targets is None:
        return True
    colors = np.asarray(colors)
    if colors.min(initial=0) < 0:
        return False
    n, k = targets.shape
    # Pair every (color, target) occurrence and look for duplicates.
    pairs = np.empty((n * k, 2), dtype=np.int64)
    pairs[:, 0] = np.repeat(colors, k)
    pairs[:, 1] = targets.reshape(-1)
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    sp = pairs[order]
    dup = np.all(sp[1:] == sp[:-1], axis=1)
    if not dup.any():
        return True
    # A duplicate pair is only a conflict when it comes from two *different*
    # elements (one element may legitimately hit the same target through
    # two slots, e.g. a degenerate edge in a test mesh).
    elems = np.repeat(np.arange(n, dtype=np.int64), k)[order]
    bad = dup & (elems[1:] != elems[:-1])
    return not bad.any()
