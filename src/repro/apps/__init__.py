"""Applications: the paper's two benchmark codes (Airfoil and Volna)."""
