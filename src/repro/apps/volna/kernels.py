"""The six Volna kernels (paper Table III) — scalar sources only.

Volna solves the non-linear shallow-water equations with a finite-volume
HLL scheme and SSP-RK2 time stepping.  Per paper Table III the kernels
are:

=================  ==========================================================
``compute_flux``   edge loop: gather left/right cell states, hydrostatic
                   reconstruction, rotated HLL Riemann flux, wave speeds
                   (direct write); the transcendental-heavy kernel
``numerical_flux`` cell loop: gather per-edge wave speeds, CFL time-step
                   MIN-reduction, zero the RHS accumulator (direct write)
``space_disc``     edge loop: scatter flux divergence + bed-slope
                   correction into both cells (colored INC)
``RK_1``           direct: stage-1 state ``q + dt*L``, state backup
``RK_2``           direct: SSP-RK2 combine ``(q_old + q_mid + dt*L)/2``
``sim_1``          direct copy (output snapshot)
=================  ==========================================================

The batched forms are generated from these scalar bodies by
:mod:`repro.kernelc`.  Dry-state, wall-mirroring and HLL upwind
conditionals are written with ``select()`` — the branchless helpers
``_hll_flux`` / ``_velocities`` are polymorphic over scalars and lane
arrays, so the vector emitter passes calls to them straight through and
scalar and generated-vector execution agree bitwise.
"""

from __future__ import annotations

import numpy as np

from ...core.kernel import Kernel, KernelInfo
from ...simd import select, vmax, vmin

#: Gravitational acceleration (m/s^2) and dry-state depth tolerance (m).
GRAVITY = 9.81
DRY_EPS = 1e-6
#: CFL number of the explicit scheme.
CFL = 0.45


def _hll_flux(hL, unL, utL, hR, unR, utR, g):
    """Rotated-frame HLL flux for the shallow-water system.

    Operates on scalars or arrays (the select/vmin/vmax intrinsics are
    polymorphic).  Returns ``(F_h, F_un, F_ut, smax)``.
    """
    cL = np.sqrt(g * hL)
    cR = np.sqrt(g * hR)
    sL = vmin(unL - cL, unR - cR)
    sR = vmax(unL + cL, unR + cR)

    fL_h = hL * unL
    fL_un = hL * unL * unL + 0.5 * g * hL * hL
    fL_ut = hL * unL * utL
    fR_h = hR * unR
    fR_un = hR * unR * unR + 0.5 * g * hR * hR
    fR_ut = hR * unR * utR

    denom = sR - sL
    safe = np.abs(denom) > DRY_EPS
    inv = 1.0 / select(safe, denom, 1.0)
    fM_h = (sR * fL_h - sL * fR_h + sL * sR * (hR - hL)) * inv
    fM_un = (sR * fL_un - sL * fR_un + sL * sR * (hR * unR - hL * unL)) * inv
    fM_ut = (sR * fL_ut - sL * fR_ut + sL * sR * (hR * utR - hL * utL)) * inv

    f_h = select(sL >= 0.0, fL_h, select(sR <= 0.0, fR_h, fM_h))
    f_un = select(sL >= 0.0, fL_un, select(sR <= 0.0, fR_un, fM_un))
    f_ut = select(sL >= 0.0, fL_ut, select(sR <= 0.0, fR_ut, fM_ut))
    f_h = select(safe, f_h, 0.0)
    f_un = select(safe, f_un, 0.0)
    f_ut = select(safe, f_ut, 0.0)
    smax = vmax(np.abs(sL), np.abs(sR))
    return f_h, f_un, f_ut, smax


def _velocities(h, hu, hv):
    """Depth-guarded primitive velocities."""
    wet = h > DRY_EPS
    hi = 1.0 / select(wet, h, 1.0)
    u = select(wet, hu * hi, 0.0)
    v = select(wet, hv * hi, 0.0)
    return u, v


def make_kernels(g: float = GRAVITY, cfl: float = CFL) -> dict:
    """Build the Volna kernel set."""

    # ------------------------------------------------------------------
    # compute_flux — rotated HLL with hydrostatic reconstruction.
    # geom = (nx, ny, length, bflag); flux = rotated-frame (F_h, F_un,
    # F_ut, 0); speed = (smax, length).
    # ------------------------------------------------------------------
    def compute_flux(geom, q0, q1, flux, speed):
        nx, ny, ln, bnd = geom[0], geom[1], geom[2], geom[3]
        h0, hu0, hv0, zb0 = q0[0], q0[1], q0[2], q0[3]
        h1, hu1, hv1, zb1 = q1[0], q1[1], q1[2], q1[3]

        u0, v0 = _velocities(h0, hu0, hv0)
        u1, v1 = _velocities(h1, hu1, hv1)
        un0 = u0 * nx + v0 * ny
        ut0 = -u0 * ny + v0 * nx
        un1 = u1 * nx + v1 * ny
        ut1 = -u1 * ny + v1 * nx

        # Reflective wall: mirror the interior state (boundary edges map
        # both slots to the interior cell, so state1 == state0 here).
        is_wall = bnd > 0.5
        un1 = select(is_wall, -un0, un1)
        ut1 = select(is_wall, ut0, ut1)
        h1r = select(is_wall, h0, h1)
        zb1r = select(is_wall, zb0, zb1)

        # Hydrostatic (Audusse) reconstruction for well-balancing.
        zf = vmax(zb0, zb1r)
        h0s = vmax(h0 + zb0 - zf, 0.0)
        h1s = vmax(h1r + zb1r - zf, 0.0)

        f_h, f_un, f_ut, smax = _hll_flux(h0s, un0, ut0, h1s, un1, ut1, g)
        flux[0] = f_h
        flux[1] = f_un
        flux[2] = f_ut
        flux[3] = 0.0
        speed[0] = smax
        speed[1] = ln

    # ------------------------------------------------------------------
    # numerical_flux — CFL time step (global MIN) + zero the accumulator.
    # speeds: (3, 2) gathered via cell2edge's vector argument.
    # ------------------------------------------------------------------
    def numerical_flux(vol, speeds, L, dt):
        wave = (
            speeds[0][0] * speeds[0][1]
            + speeds[1][0] * speeds[1][1]
            + speeds[2][0] * speeds[2][1]
        )
        local = cfl * 2.0 * vol[0] / select(wave > DRY_EPS, wave, DRY_EPS)
        dt[0] = min(dt[0], local)
        for n in range(4):
            L[n] = 0.0

    # ------------------------------------------------------------------
    # space_disc — flux divergence + per-side bed-slope correction.
    # ------------------------------------------------------------------
    def space_disc(flux, geom, q0, q1, vol0, vol1, L0, L1):
        nx, ny, ln, bnd = geom[0], geom[1], geom[2], geom[3]
        h0, zb0 = q0[0], q0[3]
        h1, zb1 = q1[0], q1[3]

        zf = max(zb0, zb1)
        h0s = max(h0 + zb0 - zf, 0.0)
        h1s = max(h1 + zb1 - zf, 0.0)
        corr0 = 0.5 * g * (h0 * h0 - h0s * h0s)
        corr1 = 0.5 * g * (h1 * h1 - h1s * h1s)

        fn0 = flux[1] + corr0
        fn1 = flux[1] + corr1
        fx0 = fn0 * nx - flux[2] * ny
        fy0 = fn0 * ny + flux[2] * nx
        fx1 = fn1 * nx - flux[2] * ny
        fy1 = fn1 * ny + flux[2] * nx

        a0 = ln / vol0[0]
        L0[0] -= flux[0] * a0
        L0[1] -= fx0 * a0
        L0[2] -= fy0 * a0
        # Boundary edges mirror both slots onto the interior cell; the
        # second slot's contribution is masked out.
        w = 0.0 if bnd > 0.5 else 1.0
        a1 = w * ln / vol1[0]
        L1[0] += flux[0] * a1
        L1[1] += fx1 * a1
        L1[2] += fy1 * a1

    # ------------------------------------------------------------------
    # RK_1 — stage 1: backup + midpoint state.
    # ------------------------------------------------------------------
    def rk_1(q, L, q_old, q_mid, dt):
        for n in range(4):
            q_old[n] = q[n]
            q_mid[n] = q[n] + dt[0] * L[n]
        q_mid[0] = max(q_mid[0], 0.0)

    # ------------------------------------------------------------------
    # RK_2 — SSP combine of backup, midpoint and midpoint RHS.
    # ------------------------------------------------------------------
    def rk_2(q_old, q_mid, L, q, dt):
        for n in range(4):
            q[n] = 0.5 * (q_old[n] + q_mid[n] + dt[0] * L[n])
        q[0] = max(q[0], 0.0)

    # ------------------------------------------------------------------
    # sim_1 — direct copy (snapshot for output).
    # ------------------------------------------------------------------
    def sim_1(q, out):
        for n in range(4):
            out[n] = q[n]

    return {
        "compute_flux": Kernel(
            "compute_flux", compute_flux,
            info=KernelInfo(flops=154, transcendentals=2,
                            description="Gather, direct write"),
            vectorizable_simt=True,
        ),
        "numerical_flux": Kernel(
            "numerical_flux", numerical_flux,
            info=KernelInfo(flops=9, description="Gather, reduction"),
            vectorizable_simt=True,
        ),
        "space_disc": Kernel(
            "space_disc", space_disc,
            info=KernelInfo(flops=23, description="Gather, scatter"),
            vectorizable_simt=False,
        ),
        "RK_1": Kernel(
            "RK_1", rk_1,
            info=KernelInfo(flops=12, description="Direct"),
            vectorizable_simt=False,
        ),
        "RK_2": Kernel(
            "RK_2", rk_2,
            info=KernelInfo(flops=16, description="Direct"),
            vectorizable_simt=False,
        ),
        "sim_1": Kernel(
            "sim_1", sim_1,
            info=KernelInfo(flops=0, description="Direct copy"),
            vectorizable_simt=False,
        ),
    }
