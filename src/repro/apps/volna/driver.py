"""Volna application driver: shallow-water tsunami simulation.

Geometry preprocessing (edge normals oriented cell0 → cell1, triangle
areas), state initialization from the synthetic coastal scenario, and the
SSP-RK2 time loop whose kernel sequence matches the paper's Volna
(``compute_flux`` → ``numerical_flux`` → ``space_disc`` twice per step,
plus ``RK_1``/``RK_2``/``sim_1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ...core import (
    IDX_ALL,
    IDX_ID,
    INC,
    MIN,
    READ,
    WRITE,
    Dat,
    Global,
    Runtime,
    arg_dat,
    arg_gbl,
    dat_layout,
    par_loop,
)
from ...mesh import UnstructuredMesh, make_tri_mesh
from .bathymetry import DEFAULT_SCENARIO, CoastalScenario, initial_state
from .kernels import CFL, GRAVITY, make_kernels


@dataclass
class VolnaState:
    """All Dats of one Volna problem instance."""

    q: Dat          # (h, hu, hv, zb)
    q_old: Dat
    q_mid: Dat
    q_out: Dat      # sim_1 snapshot
    rhs: Dat        # L, the spatial-discretization accumulator
    flux: Dat       # per-edge rotated HLL flux
    speed: Dat      # per-edge (max wave speed, length)
    geom: Dat       # per-edge (nx, ny, length, boundary flag)
    vol: Dat        # per-cell area
    dt: Global      # MIN-reduced time step
    dt_used: Global # frozen copy consumed by the RK kernels


def edge_geometry(mesh: UnstructuredMesh, dtype=np.float64) -> np.ndarray:
    """Per-edge ``(nx, ny, length, bflag)`` with the unit normal oriented
    from cell slot 0 toward cell slot 1 (outward at boundaries)."""
    e2n = mesh.map("edge2node").values
    e2c = mesh.map("edge2cell").values
    coords = mesh.coords
    centroids = mesh.cell_centroids()

    p1 = coords[e2n[:, 0]]
    p2 = coords[e2n[:, 1]]
    d = p2 - p1
    length = np.hypot(d[:, 0], d[:, 1])
    nx = d[:, 1] / length
    ny = -d[:, 0] / length

    is_boundary = e2c[:, 0] == e2c[:, 1]
    mid = 0.5 * (p1 + p2)
    # Interior: flip normals that point 1 -> 0; boundary: flip normals
    # that point into the domain (toward the cell centroid).
    toward = np.where(
        is_boundary[:, None],
        mid - centroids[e2c[:, 0]],
        centroids[e2c[:, 1]] - centroids[e2c[:, 0]],
    )
    flip = nx * toward[:, 0] + ny * toward[:, 1] < 0
    nx = np.where(flip, -nx, nx)
    ny = np.where(flip, -ny, ny)

    out = np.zeros((e2n.shape[0], 4), dtype=dtype)
    out[:, 0] = nx
    out[:, 1] = ny
    out[:, 2] = length
    out[:, 3] = is_boundary.astype(dtype)
    return out


def cell_areas(mesh: UnstructuredMesh) -> np.ndarray:
    """Triangle areas via the shoelace formula."""
    c2n = mesh.map("cell2node").values
    p = mesh.coords[c2n]  # (cells, 3, 2)
    return 0.5 * np.abs(
        (p[:, 1, 0] - p[:, 0, 0]) * (p[:, 2, 1] - p[:, 0, 1])
        - (p[:, 2, 0] - p[:, 0, 0]) * (p[:, 1, 1] - p[:, 0, 1])
    )


class VolnaSim:
    """Shallow-water tsunami solver on a triangular coastal mesh.

    The paper runs Volna in single precision only; ``dtype`` defaults to
    ``np.float32`` accordingly (``float64`` works too and is what the
    equivalence tests use for tight tolerances).
    """

    def __init__(
        self,
        mesh: Optional[UnstructuredMesh] = None,
        dtype=np.float32,
        runtime: Optional[Runtime] = None,
        scenario: CoastalScenario = DEFAULT_SCENARIO,
        gravity: float = GRAVITY,
        cfl: float = CFL,
        chained: Optional[bool] = None,
        tiling=None,
    ) -> None:
        self.mesh = (
            mesh
            if mesh is not None
            else make_tri_mesh(
                32, 24, scenario.extent_x, scenario.extent_y
            )
        )
        self.dtype = np.dtype(dtype)
        self.runtime = runtime
        self.scenario = scenario
        #: Whether the caller chose the dispatch mode (a tuning pin);
        #: ``None`` defaults to chained, and under ``Runtime("auto")``
        #: leaves the mode to the tuner.
        self.chained_explicit = chained is not None
        self.chained = True if chained is None else bool(chained)
        if tiling is not None and not self.chained:
            raise ValueError(
                "tiling requires chained=True (sparse tiling lowers a "
                "traced loop chain; eager dispatch has no chain to tile)"
            )
        #: Sparse-tiling request forwarded to ``runtime.chain(tiling=...)``.
        self.tiling = tiling
        self.kernels: Dict[str, object] = make_kernels(gravity, cfl)
        self.state = self._init_state()
        self.time = 0.0
        self.steps_run = 0
        self.dt_history: List[float] = []
        rt = self._runtime()
        if getattr(rt, "autotune_requested", False):
            from ...tune import autotune_sim

            autotune_sim(self, runtime=rt)

    def _runtime(self) -> Runtime:
        from ...core.runtime import default_runtime

        return self.runtime if self.runtime is not None else default_runtime()

    # ------------------------------------------------------------------
    def _init_state(self) -> VolnaState:
        m = self.mesh
        q0 = initial_state(m.cell_centroids(), self.scenario, self.dtype)
        # Allocate under the runtime's preferred data layout (AoS/SoA).
        with dat_layout(getattr(self.runtime, "layout", None)):
            return self._make_state(m, q0)

    def _make_state(self, m, q0) -> VolnaState:
        return VolnaState(
            q=Dat(m.cells, 4, q0, self.dtype, name="q"),
            q_old=Dat(m.cells, 4, dtype=self.dtype, name="q_old"),
            q_mid=Dat(m.cells, 4, dtype=self.dtype, name="q_mid"),
            q_out=Dat(m.cells, 4, dtype=self.dtype, name="q_out"),
            rhs=Dat(m.cells, 4, dtype=self.dtype, name="rhs"),
            flux=Dat(m.edges, 4, dtype=self.dtype, name="flux"),
            speed=Dat(m.edges, 2, dtype=self.dtype, name="speed"),
            geom=Dat(m.edges, 4, edge_geometry(m, self.dtype),
                     self.dtype, name="geom"),
            vol=Dat(m.cells, 1, cell_areas(m).reshape(-1, 1),
                    self.dtype, name="vol"),
            dt=Global(1, 0.0, self.dtype, name="dt"),
            dt_used=Global(1, 0.0, self.dtype, name="dt_used"),
        )

    def _realloc_state(self) -> None:
        """Reallocate the state under the runtime's (new) layout.

        Called by the auto-tuner after a layout switch; also invalidates
        the memoized loop signatures (they reference the old Dats).
        """
        self.state = self._init_state()
        self._loop_args_cache = None

    # ------------------------------------------------------------------
    def _loop_args(self, q_in: Dat) -> Dict[str, tuple]:
        """Loop signatures for one stage; memoized per ``q_in`` Dat
        (stage 1 reads ``q``, stage 2 reads ``q_mid`` — two entries)."""
        cache = getattr(self, "_loop_args_cache", None)
        if cache is None:
            cache = self._loop_args_cache = {}
        cached = cache.get(q_in)
        if cached is not None:
            return cached
        m, s = self.mesh, self.state
        e2c = m.map("edge2cell")
        c2e = m.map("cell2edge")
        cache[q_in] = {
            "compute_flux": (
                m.edges,
                arg_dat(s.geom, IDX_ID, None, READ),
                arg_dat(q_in, 0, e2c, READ),
                arg_dat(q_in, 1, e2c, READ),
                arg_dat(s.flux, IDX_ID, None, WRITE),
                arg_dat(s.speed, IDX_ID, None, WRITE),
            ),
            "numerical_flux": (
                m.cells,
                arg_dat(s.vol, IDX_ID, None, READ),
                arg_dat(s.speed, IDX_ALL, c2e, READ),
                arg_dat(s.rhs, IDX_ID, None, WRITE),
                arg_gbl(s.dt, MIN),
            ),
            "space_disc": (
                m.edges,
                arg_dat(s.flux, IDX_ID, None, READ),
                arg_dat(s.geom, IDX_ID, None, READ),
                arg_dat(q_in, 0, e2c, READ),
                arg_dat(q_in, 1, e2c, READ),
                arg_dat(s.vol, 0, e2c, READ),
                arg_dat(s.vol, 1, e2c, READ),
                arg_dat(s.rhs, 0, e2c, INC),
                arg_dat(s.rhs, 1, e2c, INC),
            ),
            "RK_1": (
                m.cells,
                arg_dat(s.q, IDX_ID, None, READ),
                arg_dat(s.rhs, IDX_ID, None, READ),
                arg_dat(s.q_old, IDX_ID, None, WRITE),
                arg_dat(s.q_mid, IDX_ID, None, WRITE),
                arg_gbl(s.dt_used, READ),
            ),
            "RK_2": (
                m.cells,
                arg_dat(s.q_old, IDX_ID, None, READ),
                arg_dat(s.q_mid, IDX_ID, None, READ),
                arg_dat(s.rhs, IDX_ID, None, READ),
                arg_dat(s.q, IDX_ID, None, WRITE),
                arg_gbl(s.dt_used, READ),
            ),
            "sim_1": (
                m.cells,
                arg_dat(s.q, IDX_ID, None, READ),
                arg_dat(s.q_out, IDX_ID, None, WRITE),
            ),
        }
        return cache[q_in]

    def _run_loop(self, name: str, q_in: Dat) -> None:
        set_, *args = self._loop_args(q_in)[name]
        par_loop(self.kernels[name], set_, *args, runtime=self.runtime)

    # ------------------------------------------------------------------
    def step(self) -> float:
        """One SSP-RK2 step with adaptive CFL time step; returns dt.

        In chained mode (the default) the step body records into a
        deferred loop chain; the mid-step ``dt`` read (the CFL-reduced
        time step feeds the RK kernels) and the final ``dt_used`` read
        are natural flush points through the Globals' read barriers, so
        one step flushes as two batches — loops 1–3 (flux / dt / RHS)
        and loops 4–9 (the RK updates and snapshot).
        """
        if self.chained:
            with self._runtime().chain(tiling=self.tiling):
                return self._step_body()
        return self._step_body()

    def _step_body(self) -> float:
        s = self.state
        # Stage 1: fluxes at q, dt reduction, RHS.
        s.dt.value = np.finfo(self.dtype).max
        self._run_loop("compute_flux", s.q)
        self._run_loop("numerical_flux", s.q)
        self._run_loop("space_disc", s.q)
        s.dt_used.value = s.dt.value
        self._run_loop("RK_1", s.q)

        # Stage 2: fluxes at the midpoint state, same dt.
        self._run_loop("compute_flux", s.q_mid)
        self._run_loop("numerical_flux", s.q_mid)
        self._run_loop("space_disc", s.q_mid)
        self._run_loop("RK_2", s.q_mid)

        self._run_loop("sim_1", s.q)
        dt = float(s.dt_used.value)
        self.time += dt
        self.steps_run += 1
        self.dt_history.append(dt)
        return dt

    def run(self, nsteps: int) -> float:
        """Run ``nsteps`` steps; returns simulated time."""
        for _ in range(nsteps):
            self.step()
        return self.time

    # ------------------------------------------------------------------
    @property
    def q(self) -> np.ndarray:
        """Current state ``(n_cells, 4)``."""
        return self.state.q.data[: self.mesh.cells.size]

    def total_mass(self) -> float:
        """Water volume — conserved exactly by the FV scheme (test hook)."""
        vol = self.state.vol.data[: self.mesh.cells.size, 0]
        h = self.q[:, 0]
        return float((vol * h).sum())

    def max_eta(self) -> float:
        """Peak free-surface elevation above sea level."""
        q = self.q
        return float((q[:, 0] + q[:, 3]).max())
