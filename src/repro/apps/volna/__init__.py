"""Volna: shallow-water tsunami simulation (paper Section 6, Table III)."""

from .bathymetry import DEFAULT_SCENARIO, CoastalScenario, bathymetry, initial_state
from .driver import VolnaSim, cell_areas, edge_geometry
from .kernels import CFL, DRY_EPS, GRAVITY, make_kernels

__all__ = [
    "CFL",
    "CoastalScenario",
    "DEFAULT_SCENARIO",
    "DRY_EPS",
    "GRAVITY",
    "VolnaSim",
    "bathymetry",
    "cell_areas",
    "edge_geometry",
    "initial_state",
    "make_kernels",
]
