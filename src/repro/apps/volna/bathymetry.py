"""Synthetic coastal bathymetry and tsunami initial conditions.

The paper's Volna run uses a real 2.5M-cell mesh of the north-western
American coast with a hypothetical Pacific tsunami.  We do not have that
proprietary mesh, so this module builds the closest synthetic equivalent:
a deep-ocean basin sloping up a continental shelf to a shallow coast with
a bay indentation (the "strait"), and a Gaussian free-surface hump
offshore as the tsunami source.  The flow regimes the kernels exercise —
deep-water propagation, shoaling on the shelf, reflection at the coast —
are all present.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CoastalScenario:
    """Parameters of the synthetic coastal basin (SI units: metres).

    The domain is ``[0, extent_x] x [0, extent_y]`` with the open ocean at
    ``x = 0`` and the coastline near ``x = extent_x``.
    """

    extent_x: float = 100_000.0
    extent_y: float = 75_000.0
    ocean_depth: float = 3000.0    # abyssal depth (m)
    shelf_depth: float = 120.0     # shelf depth after the slope (m)
    coast_depth: float = 5.0       # minimum wet depth at the coast (m)
    shelf_start: float = 0.45      # slope begins (fraction of extent_x)
    shelf_end: float = 0.7         # slope ends
    bay_center: float = 0.5        # bay position (fraction of extent_y)
    bay_width: float = 0.15        # bay half-width (fraction)
    bay_depth_boost: float = 60.0  # extra depth in the bay channel (m)

    # Tsunami source (Gaussian hump of the free surface).
    source_x: float = 0.2          # fraction of extent_x
    source_y: float = 0.5          # fraction of extent_y
    source_amplitude: float = 2.0  # m
    source_radius: float = 8_000.0  # m


DEFAULT_SCENARIO = CoastalScenario()


def bathymetry(
    xy: np.ndarray, scen: CoastalScenario = DEFAULT_SCENARIO
) -> np.ndarray:
    """Bed elevation ``zb(x, y)`` (negative below sea level).

    Piecewise-smooth: deep basin, tanh continental slope, gently shoaling
    shelf, with a deeper channel ("strait") cut through the shelf at the
    bay latitude.
    """
    xy = np.asarray(xy, dtype=np.float64)
    xf = xy[..., 0] / scen.extent_x
    yf = xy[..., 1] / scen.extent_y

    # Smooth ramp from ocean depth to shelf depth across the slope.
    s = np.clip(
        (xf - scen.shelf_start) / max(scen.shelf_end - scen.shelf_start, 1e-9),
        0.0,
        1.0,
    )
    ramp = 0.5 * (1.0 - np.cos(np.pi * s))  # C1 smooth 0 -> 1
    depth = scen.ocean_depth + (scen.shelf_depth - scen.ocean_depth) * ramp

    # Shelf shoals linearly toward the minimum coastal depth.
    shoal = np.clip((xf - scen.shelf_end) / max(1.0 - scen.shelf_end, 1e-9),
                    0.0, 1.0)
    depth = depth + (scen.coast_depth - scen.shelf_depth) * shoal * (s >= 1.0)

    # The bay channel keeps a deeper corridor through the shelf.
    bay = np.exp(-0.5 * ((yf - scen.bay_center) / scen.bay_width) ** 2)
    depth = depth + scen.bay_depth_boost * bay * ramp

    return -depth


def initial_state(
    xy: np.ndarray,
    scen: CoastalScenario = DEFAULT_SCENARIO,
    dtype=np.float64,
) -> np.ndarray:
    """Initial ``(h, hu, hv, zb)`` per point: lake at rest + tsunami hump."""
    xy = np.asarray(xy, dtype=np.float64)
    zb = bathymetry(xy, scen)
    eta = scen.source_amplitude * np.exp(
        -(
            (xy[..., 0] - scen.source_x * scen.extent_x) ** 2
            + (xy[..., 1] - scen.source_y * scen.extent_y) ** 2
        )
        / (2.0 * scen.source_radius**2)
    )
    h = np.maximum(eta - zb, 0.0)
    out = np.zeros(xy.shape[:-1] + (4,), dtype=dtype)
    out[..., 0] = h
    out[..., 3] = zb
    return out
