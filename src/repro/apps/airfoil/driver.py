"""Airfoil application driver: the OP2 benchmark's main program.

One iteration = save the state, then two Runge-Kutta-like sweeps of
``adt_calc`` → ``res_calc`` → ``bres_calc`` → ``update`` (the original
benchmark's predictor/corrector), with the RMS residual reduced every
iteration — the exact loop nest whose per-kernel timings Tables V-VIII
break down.

By default the time step executes as a deferred **loop chain**
(``core/chain.py``): the nine ``par_loop`` calls of one iteration are
recorded and flushed as one pre-analyzed, pre-fused schedule (the RMS
read at the end of the step is the flush point, through the Global's
read barrier).  ``chained=False`` keeps the classic eager dispatch;
results are bitwise identical either way — the equivalence tests sweep
both modes over the full backend × layout matrix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...core import (
    IDX_ALL,
    IDX_ID,
    INC,
    READ,
    RW,
    WRITE,
    Dat,
    Global,
    Runtime,
    arg_dat,
    arg_gbl,
    dat_layout,
    par_loop,
)
from ...mesh import UnstructuredMesh, make_airfoil_mesh
from ...mpi import DistContext
from .constants import AirfoilConstants, DEFAULT_CONSTANTS
from .kernels import make_kernels


@dataclass
class AirfoilState:
    """All Dats of one Airfoil problem instance."""

    p_x: Dat
    p_q: Dat
    p_qold: Dat
    p_adt: Dat
    p_res: Dat
    p_bound: Dat
    rms: Global = field(default=None)  # type: ignore[assignment]


class AirfoilSim:
    """Non-linear 2-D inviscid airfoil solver on an unstructured mesh.

    Parameters
    ----------
    mesh:
        An airfoil-style mesh (defaults to a small generated O-mesh).
    dtype:
        ``np.float64`` (paper DP) or ``np.float32`` (paper SP).
    runtime:
        Execution configuration; module default when omitted.
    constants:
        Flow constants (Mach, angle of attack, CFL, dissipation).
    chained:
        ``True`` traces each time step as a deferred loop chain;
        ``False`` dispatches every ``par_loop`` eagerly.  The default
        (``None``) means chained — except under an auto-tuning runtime
        (``Runtime("auto")``), where leaving it unset lets the tuner
        negotiate the mode; passing an explicit value pins it.
    tiling:
        Sparse-tiling request forwarded to ``runtime.chain(tiling=...)``
        (``None`` = fused loop-major execution, ``"auto"`` or a seed
        tile size = tile-major execution; requires ``chained=True``).
        Results are bitwise identical in every mode.
    """

    def __init__(
        self,
        mesh: Optional[UnstructuredMesh] = None,
        dtype=np.float64,
        runtime: Optional[Runtime] = None,
        constants: AirfoilConstants = DEFAULT_CONSTANTS,
        chained: Optional[bool] = None,
        tiling=None,
    ) -> None:
        self.mesh = mesh if mesh is not None else make_airfoil_mesh(48, 24)
        self.dtype = np.dtype(dtype)
        self.runtime = runtime
        self.constants = constants
        #: Whether the caller chose the dispatch mode (a tuning pin).
        self.chained_explicit = chained is not None
        self.chained = True if chained is None else bool(chained)
        if tiling is not None and not self.chained:
            raise ValueError(
                "tiling requires chained=True (sparse tiling lowers a "
                "traced loop chain; eager dispatch has no chain to tile)"
            )
        self.tiling = tiling
        self.kernels: Dict[str, object] = make_kernels(constants)
        self.state = self._init_state()
        self.rms_history: List[float] = []
        self.iterations_run = 0
        rt = self._runtime()
        if getattr(rt, "autotune_requested", False):
            from ...tune import autotune_sim

            autotune_sim(self, runtime=rt)

    def _runtime(self) -> Runtime:
        from ...core.runtime import default_runtime

        return self.runtime if self.runtime is not None else default_runtime()

    # ------------------------------------------------------------------
    def _init_state(self) -> AirfoilState:
        m = self.mesh
        qinf = self.constants.qinf(self.dtype)
        q0 = np.broadcast_to(qinf, (m.cells.size, 4))
        # Allocate under the runtime's preferred data layout (AoS/SoA) so
        # layout is a Runtime knob rather than per-Dat boilerplate.
        with dat_layout(getattr(self.runtime, "layout", None)):
            return self._make_state(m, q0)

    def _realloc_state(self) -> None:
        """Reallocate the state under the runtime's (new) layout.

        Used by the auto-tuner before any step has run — the state is
        re-derived from the mesh and constants, and the memoized loop
        args are dropped so they rebind to the fresh Dats.
        """
        self.state = self._init_state()
        self._loop_args_cache = None

    def _make_state(self, m, q0) -> AirfoilState:
        return AirfoilState(
            p_x=Dat(m.nodes, 2, m.coords, self.dtype, name="p_x"),
            p_q=Dat(m.cells, 4, q0, self.dtype, name="p_q"),
            p_qold=Dat(m.cells, 4, dtype=self.dtype, name="p_qold"),
            p_adt=Dat(m.cells, 1, dtype=self.dtype, name="p_adt"),
            p_res=Dat(m.cells, 4, dtype=self.dtype, name="p_res"),
            p_bound=Dat(
                m.bedges, 1, m.meta["bound"].reshape(-1, 1),
                np.int64, name="p_bound",
            ),
            rms=Global(1, 0.0, self.dtype, name="rms"),
        )

    # ------------------------------------------------------------------
    def _loop_args(self) -> Dict[str, tuple]:
        """The five parallel-loop signatures (set, args...).

        Args are immutable descriptors over fixed state Dats, so the
        dict is built once and memoized — rebuilding ~45 Arg objects
        per loop call was pure per-step overhead for both execution
        modes.
        """
        cached = getattr(self, "_loop_args_cache", None)
        if cached is not None:
            return cached
        m, s = self.mesh, self.state
        e2n = m.map("edge2node")
        e2c = m.map("edge2cell")
        b2n = m.map("bedge2node")
        b2c = m.map("bedge2cell")
        c2n = m.map("cell2node")
        self._loop_args_cache = {
            "save_soln": (
                m.cells,
                arg_dat(s.p_q, IDX_ID, None, READ),
                arg_dat(s.p_qold, IDX_ID, None, WRITE),
            ),
            "adt_calc": (
                m.cells,
                arg_dat(s.p_x, IDX_ALL, c2n, READ),
                arg_dat(s.p_q, IDX_ID, None, READ),
                arg_dat(s.p_adt, IDX_ID, None, WRITE),
            ),
            "res_calc": (
                m.edges,
                arg_dat(s.p_x, 0, e2n, READ),
                arg_dat(s.p_x, 1, e2n, READ),
                arg_dat(s.p_q, 0, e2c, READ),
                arg_dat(s.p_q, 1, e2c, READ),
                arg_dat(s.p_adt, 0, e2c, READ),
                arg_dat(s.p_adt, 1, e2c, READ),
                arg_dat(s.p_res, 0, e2c, INC),
                arg_dat(s.p_res, 1, e2c, INC),
            ),
            "bres_calc": (
                m.bedges,
                arg_dat(s.p_x, 0, b2n, READ),
                arg_dat(s.p_x, 1, b2n, READ),
                arg_dat(s.p_q, 0, b2c, READ),
                arg_dat(s.p_adt, 0, b2c, READ),
                arg_dat(s.p_res, 0, b2c, INC),
                arg_dat(s.p_bound, IDX_ID, None, READ),
            ),
            "update": (
                m.cells,
                arg_dat(s.p_qold, IDX_ID, None, READ),
                arg_dat(s.p_q, IDX_ID, None, WRITE),
                arg_dat(s.p_res, IDX_ID, None, RW),
                arg_dat(s.p_adt, IDX_ID, None, READ),
                arg_gbl(s.rms, INC),
            ),
        }
        return self._loop_args_cache

    def _run_loop(self, name: str) -> None:
        set_, *args = self._loop_args()[name]
        par_loop(self.kernels[name], set_, *args, runtime=self.runtime)

    # ------------------------------------------------------------------
    def step(self) -> float:
        """One outer iteration (two RK sweeps); returns the RMS residual.

        In chained mode the whole 9-loop body records into one trace;
        the ``rms.value`` read at the end is the flush point (its read
        barrier executes the pending loops), so the chain covers the
        entire step — steady-state iterations replay the memoized
        schedule from the runtime's chain cache.
        """
        if self.chained:
            with self._runtime().chain(tiling=self.tiling):
                return self._step_body()
        return self._step_body()

    def _step_body(self) -> float:
        self._run_loop("save_soln")
        self.state.rms.value = 0.0
        for _ in range(2):
            self._run_loop("adt_calc")
            self._run_loop("res_calc")
            self._run_loop("bres_calc")
            self._run_loop("update")
        self.iterations_run += 1
        rms = math.sqrt(float(self.state.rms.value) / self.mesh.cells.size)
        self.rms_history.append(rms)
        return rms

    def run(self, niter: int) -> float:
        """Run ``niter`` iterations; returns the final RMS residual."""
        rms = float("nan")
        for _ in range(niter):
            rms = self.step()
        return rms

    # ------------------------------------------------------------------
    @property
    def q(self) -> np.ndarray:
        """Current conservative state, ``(n_cells, 4)``."""
        return self.state.p_q.data[: self.mesh.cells.size]


class DistributedAirfoilSim:
    """Airfoil over the simulated-MPI substrate (owner-compute + halos).

    ``chained=True`` (default) records each time step through
    :meth:`~repro.mpi.decomposition.DistContext.chain`, coalescing the
    per-loop halo exchanges into one batched update per dependency
    frontier; ``chained=False`` keeps per-loop eager exchanges.  The
    numerical results are identical — only the message count drops.
    """

    def __init__(
        self,
        mesh: UnstructuredMesh,
        cell_parts: np.ndarray,
        nranks: int,
        dtype=np.float64,
        backend: str = "vectorized",
        block_size: int = 256,
        constants: AirfoilConstants = DEFAULT_CONSTANTS,
        chained: bool = True,
    ) -> None:
        from ...partition import partition_iteration_set

        self.chained = bool(chained)
        self.serial = AirfoilSim(mesh, dtype=dtype, constants=constants)
        m = mesh
        node_parts = partition_iteration_set(
            _invert_to_first(m.map("cell2node").values, m.nodes.size),
            cell_parts, rule="first",
        )
        edge_parts = partition_iteration_set(
            m.map("edge2cell").values, cell_parts
        )
        bedge_parts = partition_iteration_set(
            m.map("bedge2cell").values, cell_parts
        )
        ctx = DistContext(nranks, backend=backend, block_size=block_size)
        ctx.add_set(m.cells, cell_parts)
        ctx.add_set(m.nodes, node_parts)
        ctx.add_set(m.edges, edge_parts)
        ctx.add_set(m.bedges, bedge_parts)
        for name in ("edge2node", "edge2cell", "bedge2node",
                     "bedge2cell", "cell2node"):
            ctx.add_map(m.map(name))
        s = self.serial.state
        for d in (s.p_x, s.p_q, s.p_qold, s.p_adt, s.p_res, s.p_bound):
            ctx.add_dat(d)
        ctx.finalize()
        self.ctx = ctx
        self.iterations_run = 0
        self.rms_history: List[float] = []

    def step(self) -> float:
        if self.chained:
            with self.ctx.chain():
                return self._step_body()
        return self._step_body()

    def _step_body(self) -> float:
        loops = self.serial._loop_args()
        kernels = self.serial.kernels
        def run(name):
            self.ctx.par_loop(
                kernels[name], loops[name][0], *loops[name][1:]
            )
        run("save_soln")
        self.serial.state.rms.value = 0.0
        for _ in range(2):
            run("adt_calc")
            run("res_calc")
            run("bres_calc")
            run("update")
        self.iterations_run += 1
        # In chained mode this read is the flush point: the rms Global's
        # barrier executes the recorded loops (frontier-batched halos)
        # before the value is observed.
        rms = math.sqrt(
            float(self.serial.state.rms.value) / self.serial.mesh.cells.size
        )
        self.rms_history.append(rms)
        return rms

    def run(self, niter: int) -> float:
        rms = float("nan")
        for _ in range(niter):
            rms = self.step()
        return rms

    def fetch_q(self) -> np.ndarray:
        return self.ctx.fetch(self.serial.state.p_q)


def _invert_to_first(c2n: np.ndarray, n_nodes: int) -> np.ndarray:
    """For each node, a 1-slot map to the first cell that touches it
    (used to derive node ownership from the cell partition)."""
    first = np.full(n_nodes, -1, dtype=np.int64)
    # Iterate rows in reverse so the lowest cell id wins.
    for c in range(c2n.shape[0] - 1, -1, -1):
        first[c2n[c]] = c
    if (first < 0).any():
        raise ValueError("mesh has orphan nodes untouched by any cell")
    return first.reshape(-1, 1)
