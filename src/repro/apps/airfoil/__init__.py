"""Airfoil: the non-linear 2-D inviscid CFD benchmark (paper Section 6)."""

from .constants import DEFAULT_CONSTANTS, AirfoilConstants
from .driver import AirfoilSim, DistributedAirfoilSim
from .kernels import make_kernels
from .reference import reference_sweep

__all__ = [
    "AirfoilConstants",
    "AirfoilSim",
    "DEFAULT_CONSTANTS",
    "DistributedAirfoilSim",
    "make_kernels",
    "reference_sweep",
]
