"""Independent whole-array reference implementation of one Airfoil sweep.

Deliberately bypasses the OP2-like machinery (no Args, no plans, no
backends): plain NumPy over global arrays with ``np.add.at`` for the edge
scatters.  Tests compare it bit-for-bit-tolerantly against every backend,
so a bug in the DSL pipeline and a bug in the kernels cannot mask each
other.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...mesh import UnstructuredMesh
from .constants import AirfoilConstants, DEFAULT_CONSTANTS


def reference_sweep(
    mesh: UnstructuredMesh,
    q: np.ndarray,
    const: AirfoilConstants = DEFAULT_CONSTANTS,
) -> Dict[str, np.ndarray]:
    """One full iteration (save + 2 RK sweeps) on state ``q``.

    Returns ``{"q": new_state, "rms": rms_scalar, "adt": ..., "res": ...}``.
    """
    gam, gm1, cfl, eps = const.gam, const.gm1, const.cfl, const.eps
    qinf = const.qinf(q.dtype)
    x = mesh.coords.astype(q.dtype)
    c2n = mesh.map("cell2node").values
    e2n = mesh.map("edge2node").values
    e2c = mesh.map("edge2cell").values
    b2n = mesh.map("bedge2node").values
    b2c = mesh.map("bedge2cell").values[:, 0]
    bound = mesh.meta["bound"]

    q = q.copy()
    qold = q.copy()
    res = np.zeros_like(q)
    rms = 0.0

    for _ in range(2):
        # adt_calc
        ri = 1.0 / q[:, 0]
        u = ri * q[:, 1]
        v = ri * q[:, 2]
        c = np.sqrt(gam * gm1 * (ri * q[:, 3] - 0.5 * (u * u + v * v)))
        xc = x[c2n]  # (cells, 4, 2)
        acc = np.zeros_like(ri)
        for k in range(4):
            dx = xc[:, (k + 1) % 4, 0] - xc[:, k, 0]
            dy = xc[:, (k + 1) % 4, 1] - xc[:, k, 1]
            acc += np.abs(u * dy - v * dx) + c * np.sqrt(dx * dx + dy * dy)
        adt = acc / cfl

        # res_calc
        x1 = x[e2n[:, 0]]
        x2 = x[e2n[:, 1]]
        q1 = q[e2c[:, 0]]
        q2 = q[e2c[:, 1]]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri1 = 1.0 / q1[:, 0]
        p1 = gm1 * (q1[:, 3] - 0.5 * ri1 * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        vol1 = ri1 * (q1[:, 1] * dy - q1[:, 2] * dx)
        ri2 = 1.0 / q2[:, 0]
        p2 = gm1 * (q2[:, 3] - 0.5 * ri2 * (q2[:, 1] ** 2 + q2[:, 2] ** 2))
        vol2 = ri2 * (q2[:, 1] * dy - q2[:, 2] * dx)
        mu = 0.5 * (adt[e2c[:, 0]] + adt[e2c[:, 1]]) * eps
        f = np.empty_like(q1)
        f[:, 0] = 0.5 * (vol1 * q1[:, 0] + vol2 * q2[:, 0]) + mu * (
            q1[:, 0] - q2[:, 0]
        )
        f[:, 1] = 0.5 * (
            vol1 * q1[:, 1] + p1 * dy + vol2 * q2[:, 1] + p2 * dy
        ) + mu * (q1[:, 1] - q2[:, 1])
        f[:, 2] = 0.5 * (
            vol1 * q1[:, 2] - p1 * dx + vol2 * q2[:, 2] - p2 * dx
        ) + mu * (q1[:, 2] - q2[:, 2])
        f[:, 3] = 0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (q2[:, 3] + p2)) + mu * (
            q1[:, 3] - q2[:, 3]
        )
        np.add.at(res, e2c[:, 0], f)
        np.add.at(res, e2c[:, 1], -f)

        # bres_calc
        bx1 = x[b2n[:, 0]]
        bx2 = x[b2n[:, 1]]
        bq = q[b2c]
        dx = bx1[:, 0] - bx2[:, 0]
        dy = bx1[:, 1] - bx2[:, 1]
        ri = 1.0 / bq[:, 0]
        p1 = gm1 * (bq[:, 3] - 0.5 * ri * (bq[:, 1] ** 2 + bq[:, 2] ** 2))
        wall = bound == 1
        vol1 = ri * (bq[:, 1] * dy - bq[:, 2] * dx)
        ri2 = 1.0 / qinf[0]
        p2 = gm1 * (qinf[3] - 0.5 * ri2 * (qinf[1] ** 2 + qinf[2] ** 2))
        vol2 = ri2 * (qinf[1] * dy - qinf[2] * dx)
        mu = adt[b2c] * eps
        bf = np.empty_like(bq)
        bf[:, 0] = 0.5 * (vol1 * bq[:, 0] + vol2 * qinf[0]) + mu * (
            bq[:, 0] - qinf[0]
        )
        bf[:, 1] = 0.5 * (
            vol1 * bq[:, 1] + p1 * dy + vol2 * qinf[1] + p2 * dy
        ) + mu * (bq[:, 1] - qinf[1])
        bf[:, 2] = 0.5 * (
            vol1 * bq[:, 2] - p1 * dx + vol2 * qinf[2] - p2 * dx
        ) + mu * (bq[:, 2] - qinf[2])
        bf[:, 3] = 0.5 * (vol1 * (bq[:, 3] + p1) + vol2 * (qinf[3] + p2)) + mu * (
            bq[:, 3] - qinf[3]
        )
        bf[wall, 0] = 0.0
        bf[wall, 1] = (p1 * dy)[wall]
        bf[wall, 2] = (-p1 * dx)[wall]
        bf[wall, 3] = 0.0
        np.add.at(res, b2c, bf)

        # update
        delta = res / adt[:, None]
        q = qold - delta
        res[:] = 0.0
        rms += float((delta * delta).sum())

    return {
        "q": q,
        "rms": float(np.sqrt(rms / mesh.cells.size)),
        "adt": adt,
        "res": res,
    }
