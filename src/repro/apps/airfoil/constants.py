"""Airfoil flow constants (the OP2 benchmark's ``op_decl_const`` values).

Non-linear 2-D inviscid flow around an airfoil at Mach 0.4, 3 degrees
angle of attack, with Lax-Friedrichs-style artificial dissipation —
matching Giles et al.'s original benchmark setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AirfoilConstants:
    """Immutable flow/scheme constants broadcast to every kernel."""

    gam: float = 1.4          # ratio of specific heats
    cfl: float = 0.9          # CFL number for local timestepping
    eps: float = 0.05         # artificial-dissipation coefficient
    mach: float = 0.4         # free-stream Mach number
    alpha_deg: float = 3.0    # angle of attack (degrees)

    @property
    def gm1(self) -> float:
        return self.gam - 1.0

    def qinf(self, dtype=np.float64) -> np.ndarray:
        """Free-stream conservative state (rho, rho*u, rho*v, rho*E)."""
        alpha = math.radians(self.alpha_deg)
        p = 1.0
        r = 1.0
        u = math.sqrt(self.gam * p / r) * self.mach
        e = p / (r * self.gm1) + 0.5 * u * u
        return np.array(
            [r, r * u * math.cos(alpha), r * u * math.sin(alpha), r * e],
            dtype=dtype,
        )


DEFAULT_CONSTANTS = AirfoilConstants()
