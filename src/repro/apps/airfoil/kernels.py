"""The five Airfoil kernels (paper Table II) — scalar sources only.

These are direct transcriptions of the OP2 Airfoil user kernels.  The
batched (cross-element SIMD) forms are **generated** from these scalar
bodies by the kernel compiler (:mod:`repro.kernelc`): backends request
them per argument shape through :meth:`Kernel.vector_for`, branches such
as ``bres_calc``'s wall/far-field conditional are lowered to lane masks
automatically — exactly the rewrite Section 4.2 describes, performed by
the emitter instead of by hand.  Inspect the generated code with
``python -m repro.bench --dump-kernel res_calc``.

Arithmetic metadata mirrors Table II (FLOPs per element, transcendentals
counted as one each); ``vectorizable_simt`` encodes which kernels the
Intel OpenCL compiler vectorized *on the CPU* (Table VI: ``adt_calc`` and
``bres_calc`` yes; ``save_soln``, ``res_calc``, ``update`` no).
"""

from __future__ import annotations

import numpy as np

from ...core.kernel import Kernel, KernelInfo
from .constants import AirfoilConstants, DEFAULT_CONSTANTS


def make_kernels(const: AirfoilConstants = DEFAULT_CONSTANTS) -> dict:
    """Build the kernel set for one constants configuration.

    Returns a name → :class:`~repro.core.kernel.Kernel` dict with keys
    ``save_soln``, ``adt_calc``, ``res_calc``, ``bres_calc``, ``update``.
    """
    gam, gm1, cfl, eps = const.gam, const.gm1, const.cfl, const.eps
    qinf = const.qinf()

    # ------------------------------------------------------------------
    # save_soln: direct copy of the state vector (Table II row 1).
    # ------------------------------------------------------------------
    def save_soln(q, qold):
        for n in range(4):
            qold[n] = q[n]

    # ------------------------------------------------------------------
    # adt_calc: local timestep from cell geometry + state (4 corner-node
    # gathers, direct write; 5 sqrts make it compute-heavy when scalar).
    # ------------------------------------------------------------------
    def adt_calc(x, q, adt):
        # x: (4, 2) corner coordinates via the cell2node vector argument.
        ri = 1.0 / q[0]
        u = ri * q[1]
        v = ri * q[2]
        c = np.sqrt(gam * gm1 * (ri * q[3] - 0.5 * (u * u + v * v)))
        acc = 0.0
        for k in range(4):
            x1 = x[k]
            x2 = x[(k + 1) % 4]
            dx = x2[0] - x1[0]
            dy = x2[1] - x1[1]
            acc += abs(u * dy - v * dx) + c * np.sqrt(dx * dx + dy * dy)
        adt[0] = acc / cfl

    # ------------------------------------------------------------------
    # res_calc: edge flux with artificial dissipation; the INC scatter to
    # both adjacent cells is the paper's canonical race (Fig 2a).
    # ------------------------------------------------------------------
    def res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2):
        dx = x1[0] - x2[0]
        dy = x1[1] - x2[1]

        ri = 1.0 / q1[0]
        p1 = gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]))
        vol1 = ri * (q1[1] * dy - q1[2] * dx)

        ri = 1.0 / q2[0]
        p2 = gm1 * (q2[3] - 0.5 * ri * (q2[1] * q2[1] + q2[2] * q2[2]))
        vol2 = ri * (q2[1] * dy - q2[2] * dx)

        mu = 0.5 * (adt1[0] + adt2[0]) * eps

        f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0])
        res1[0] += f
        res2[0] -= f
        f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (
            q1[1] - q2[1]
        )
        res1[1] += f
        res2[1] -= f
        f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (
            q1[2] - q2[2]
        )
        res1[2] += f
        res2[2] -= f
        f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (
            q1[3] - q2[3]
        )
        res1[3] += f
        res2[3] -= f

    # ------------------------------------------------------------------
    # bres_calc: boundary flux with the wall / far-field branch.  The
    # vector emitter lowers this conditional to lane masks (Section
    # 4.2's one rewrite) — no hand-written select() version needed.
    # ------------------------------------------------------------------
    def bres_calc(x1, x2, q1, adt1, res1, bound):
        dx = x1[0] - x2[0]
        dy = x1[1] - x2[1]
        ri = 1.0 / q1[0]
        p1 = gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]))
        if bound[0] == 1:  # solid wall: pressure force only
            res1[1] += +p1 * dy
            res1[2] += -p1 * dx
        else:  # far field: flux against the free stream
            vol1 = ri * (q1[1] * dy - q1[2] * dx)
            ri = 1.0 / qinf[0]
            p2 = gm1 * (qinf[3] - 0.5 * ri * (qinf[1] ** 2 + qinf[2] ** 2))
            vol2 = ri * (qinf[1] * dy - qinf[2] * dx)
            mu = adt1[0] * eps
            f = 0.5 * (vol1 * q1[0] + vol2 * qinf[0]) + mu * (q1[0] - qinf[0])
            res1[0] += f
            f = 0.5 * (
                vol1 * q1[1] + p1 * dy + vol2 * qinf[1] + p2 * dy
            ) + mu * (q1[1] - qinf[1])
            res1[1] += f
            f = 0.5 * (
                vol1 * q1[2] - p1 * dx + vol2 * qinf[2] - p2 * dx
            ) + mu * (q1[2] - qinf[2])
            res1[2] += f
            f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (qinf[3] + p2)) + mu * (
                q1[3] - qinf[3]
            )
            res1[3] += f

    # ------------------------------------------------------------------
    # update: flow-field update + RMS residual reduction (direct loop).
    # ------------------------------------------------------------------
    def update(qold, q, res, adt, rms):
        adti = 1.0 / adt[0]
        for n in range(4):
            delta = adti * res[n]
            q[n] = qold[n] - delta
            res[n] = 0.0
            rms[0] += delta * delta

    return {
        "save_soln": Kernel(
            "save_soln",
            save_soln,
            info=KernelInfo(flops=4, description="Direct copy"),
            vectorizable_simt=False,
        ),
        "adt_calc": Kernel(
            "adt_calc",
            adt_calc,
            info=KernelInfo(flops=64, transcendentals=5,
                            description="Gather, direct write"),
            vectorizable_simt=True,
        ),
        "res_calc": Kernel(
            "res_calc",
            res_calc,
            info=KernelInfo(flops=73, description="Gather, colored scatter"),
            vectorizable_simt=False,
        ),
        "bres_calc": Kernel(
            "bres_calc",
            bres_calc,
            info=KernelInfo(flops=73, description="Boundary"),
            vectorizable_simt=True,
        ),
        "update": Kernel(
            "update",
            update,
            info=KernelInfo(flops=17, description="Direct, reduction"),
            vectorizable_simt=False,
        ),
    }
