"""Aero application driver: nonlinear potential flow by FEM + CG.

The third canonical OP2-family workload (next to Airfoil and Volna):
where the finite-volume apps stream edge fluxes, aero *assembles a
sparse operator* — each Picard iteration evaluates the isentropic
density from the current potential, assembles the density-weighted
stiffness matrix through a :class:`~repro.core.mat.Mat` argument,
builds the Dirichlet-lifted right-hand side, and solves the linear
system with the par_loop conjugate-gradient solver
(:mod:`repro.solve`).

One Picard iteration (= one :meth:`AeroSim.step`)::

    rho_calc   cells  phi -> rho            (gather, direct write)
    res_calc   cells  x, rho -> Mat(INC)    (element -> matrix scatter)
    assemble   host   staged -> CSR         (canonical fold, Mat.assemble)
    spmv       nodes  K lift -> kg          (padded-row gather SpMV)
    rhs_calc   nodes  kg, lift, bc -> b
    dirichlet  host   K rows/cols -> identity
    cg         nodes  ~10-100 solver loops  (repro.solve.cg)

Everything mesh-sized is a parallel loop; the two host steps are the
deterministic folds that make the assembled CSR and the solution
*bitwise identical* across every backend, data layout and execution
mode ({eager, chained, tiled}) — the aero acceptance property.

The matrix-free path (``operator="matfree"``) replaces the middle of
that pipeline: no staging scatter, no host folds, no assembled values.
A :class:`~repro.solve.matfree.MatFreeOperator` re-derives the operator
action from static per-element quadrature tables and the current
density, so one Picard step becomes::

    rho_calc    cells  phi -> rho
    mf_coeffs   nodes  rho, tables -> action coefficients (raw + BC)
    mf_kg       nodes  raw coeffs x lift -> kg
    rhs_calc    nodes  kg, lift, bc -> b
    apply_bc    nodes  far-field pin
    cg          nodes  matfree A·p iterations

— every stage a par_loop, so the whole pre-solve phase traces into a
single unbroken chain.  The coefficient kernel folds element
contributions in ``Mat.assemble``'s canonical order, which keeps phi
and rho bitwise identical to the assembled oracle; ``operator="auto"``
(the default) keeps the assembled path unless ``Runtime("auto")``'s
tuner measures matfree faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ...core import (
    IDX_ALL,
    IDX_ID,
    INC,
    READ,
    RW,
    WRITE,
    Dat,
    Mat,
    Runtime,
    arg_dat,
    arg_mat,
    dat_layout,
    par_loop,
)
from ...mesh import UnstructuredMesh, make_airfoil_mesh
from ...solve import CGResult, MatFreeOperator, MatOperator, cg
from .constants import AeroConstants, DEFAULT_CONSTANTS
from .kernels import element_quadrature_tables, make_kernels

#: Valid values of the ``operator=`` knob.
OPERATOR_MODES = ("auto", "assembled", "matfree")


@dataclass
class AeroState:
    """All Dats (and the Mat) of one aero problem instance."""

    p_x: Dat
    p_phi: Dat
    p_rho: Dat
    p_lift: Dat
    p_bc: Dat
    p_kg: Dat
    p_b: Dat
    mat: Mat = field(default=None)  # type: ignore[assignment]


class AeroSim:
    """Nonlinear 2-D potential-flow FEM solver on the airfoil O-mesh.

    Parameters
    ----------
    mesh:
        An airfoil-style quad mesh (defaults to a small generated
        O-mesh).  Far-field boundary nodes (``bound == 2`` bedges)
        carry the Dirichlet data; the wall is a natural (zero normal
        flow) boundary.
    dtype:
        ``np.float64`` or ``np.float32``.
    runtime:
        Execution configuration; module default when omitted.  The
        state (including the matrix staging) allocates under the
        runtime's preferred data layout.
    constants:
        Flow configuration (Mach, angle of attack, gamma).
    chained:
        ``True`` traces the assembly phase and each CG iteration as
        deferred loop chains; ``False`` dispatches every ``par_loop``
        eagerly.  Bitwise identical either way.  ``None`` (default)
        behaves like ``True`` but also lets ``Runtime("auto")``'s tuner
        pick the mode.
    tiling:
        Sparse-tiling request forwarded to ``runtime.chain(tiling=...)``
        (requires ``chained=True``); bitwise identical too.
    cg_tol, cg_maxiter:
        Linear-solve controls for each Picard iteration.
    operator:
        Operator realization for the CG solve: ``"assembled"`` stages
        and folds the CSR matrix every Picard step (the bitwise
        oracle), ``"matfree"`` re-derives the operator action on the
        fly (bitwise identical phi/rho, ``Mat.assemble`` never called),
        ``"auto"`` (default) behaves like assembled but lets
        ``Runtime("auto")``'s tuner measure and pick.  The matfree
        path requires ``float64`` (its quadrature tables replicate the
        float64 assembly arithmetic).
    """

    def __init__(
        self,
        mesh: Optional[UnstructuredMesh] = None,
        dtype=np.float64,
        runtime: Optional[Runtime] = None,
        constants: AeroConstants = DEFAULT_CONSTANTS,
        chained: Optional[bool] = None,
        tiling=None,
        cg_tol: float = 1e-10,
        cg_maxiter: int = 200,
        operator: str = "auto",
    ) -> None:
        self.mesh = mesh if mesh is not None else make_airfoil_mesh(24, 12)
        self.dtype = np.dtype(dtype)
        self.runtime = runtime
        self.constants = constants
        #: Whether the caller chose the dispatch mode (a tuning pin);
        #: ``None`` defaults to chained, and under ``Runtime("auto")``
        #: leaves the mode to the tuner.
        self.chained_explicit = chained is not None
        self.chained = True if chained is None else bool(chained)
        if tiling is not None and not self.chained:
            raise ValueError(
                "tiling requires chained=True (sparse tiling lowers a "
                "traced loop chain; eager dispatch has no chain to tile)"
            )
        self.tiling = tiling
        self.cg_tol = float(cg_tol)
        self.cg_maxiter = int(cg_maxiter)
        if operator not in OPERATOR_MODES:
            raise ValueError(
                f"operator must be one of {OPERATOR_MODES}, "
                f"got {operator!r}"
            )
        #: Whether the matfree axis is available to the tuner: the
        #: quadrature tables replicate float64 assembly arithmetic.
        self.operator_axis = np.dtype(dtype) == np.float64
        if operator == "matfree" and not self.operator_axis:
            raise ValueError(
                "operator='matfree' requires dtype=float64 (the "
                "quadrature tables replicate the float64 assembly "
                "arithmetic bit for bit)"
            )
        #: Whether the caller chose the operator (a tuning pin).
        self.operator_explicit = operator != "auto"
        #: The realization steps execute with; "auto" resolves to
        #: assembled unless the tuner installs matfree.
        self.operator_mode = operator if operator != "auto" \
            else "assembled"
        self.kernels: Dict[str, object] = make_kernels(constants)
        self.state = self._init_state()
        #: Padded-row SpMV operator over the assembled matrix (built
        #: once — the sparsity is pure connectivity).
        self.operator = MatOperator(self.state.mat)
        self.kernels["spmv"] = self.operator.kernel
        #: Matrix-free twin over the same sparsity — always built (the
        #: tuning signature must not fork on the operator mode), only
        #: executed when the mode says so.
        self.matfree = self._make_matfree()
        self.cg_results: List[CGResult] = []
        self.delta_history: List[float] = []
        self.iterations_run = 0
        rt = self._runtime()
        if getattr(rt, "autotune_requested", False):
            from ...tune import autotune_sim

            autotune_sim(self, runtime=rt)

    def _runtime(self) -> Runtime:
        from ...core.runtime import default_runtime

        return self.runtime if self.runtime is not None else default_runtime()

    def _make_matfree(self) -> MatFreeOperator:
        """Build the matrix-free twin of the assembled operator.

        Static per-element quadrature tables come from the float64 mesh
        coordinates (matching ``res_calc``'s arithmetic exactly); the
        operator re-reads ``p_rho`` on every coefficient refresh, so
        Picard updates flow through with no rebuild.
        """
        m, s = self.mesh, self.state
        xs = np.asarray(m.coords, dtype=np.float64)[
            m.map("cell2node").values
        ]
        with dat_layout(getattr(self.runtime, "layout", None)):
            op = MatFreeOperator(
                s.mat, element_quadrature_tables(xs), s.p_rho, s.p_bc,
            )
        self.kernels["mf_coeffs"] = op.kernels["coeffs"]
        self.kernels["mf_kg"] = op.kernels["apply"]
        return op

    # ------------------------------------------------------------------
    def _init_state(self) -> AeroState:
        m = self.mesh
        dx, dy = self.constants.direction
        #: Far-field (Dirichlet) node mask from the boundary-edge flags.
        bc_mask = np.zeros(m.nodes.size, dtype=bool)
        far = m.meta["bound"] == 2
        bc_mask[np.unique(m.map("bedge2node").values[far])] = True
        self.bc_mask = bc_mask
        # Free-stream potential: the Dirichlet data on far-field nodes
        # and the initial guess everywhere.
        phi_inf = m.coords[:, 0] * dx + m.coords[:, 1] * dy
        lift = np.where(bc_mask, phi_inf, 0.0)
        with dat_layout(getattr(self.runtime, "layout", None)):
            state = AeroState(
                p_x=Dat(m.nodes, 2, m.coords, self.dtype, name="p_x"),
                p_phi=Dat(m.nodes, 1, phi_inf, self.dtype, name="p_phi"),
                p_rho=Dat(m.cells, 1, 1.0, self.dtype, name="p_rho"),
                p_lift=Dat(m.nodes, 1, lift, self.dtype, name="p_lift"),
                p_bc=Dat(
                    m.nodes, 1, bc_mask.astype(float), self.dtype,
                    name="p_bc",
                ),
                p_kg=Dat(m.nodes, 1, dtype=self.dtype, name="p_kg"),
                p_b=Dat(m.nodes, 1, dtype=self.dtype, name="p_b"),
            )
            c2n = m.map("cell2node")
            state.mat = Mat(c2n, c2n, dtype=self.dtype, name="K")
        return state

    def _realloc_state(self) -> None:
        """Reallocate the state under the runtime's (new) layout.

        Called by the auto-tuner after a layout switch; rebuilds the
        SpMV operator over the fresh matrix staging and invalidates the
        memoized loop signatures.
        """
        self.state = self._init_state()
        self.operator = MatOperator(self.state.mat)
        self.kernels["spmv"] = self.operator.kernel
        self.matfree = self._make_matfree()
        self._loop_args_cache = None

    # ------------------------------------------------------------------
    def _loop_args(self) -> Dict[str, tuple]:
        """The aero parallel-loop signatures (set, args...), memoized."""
        cached = getattr(self, "_loop_args_cache", None)
        if cached is not None:
            return cached
        m, s = self.mesh, self.state
        c2n = m.map("cell2node")
        self._loop_args_cache = {
            "rho_calc": (
                m.cells,
                arg_dat(s.p_x, IDX_ALL, c2n, READ),
                arg_dat(s.p_phi, IDX_ALL, c2n, READ),
                arg_dat(s.p_rho, IDX_ID, None, WRITE),
            ),
            "res_calc": (
                m.cells,
                arg_dat(s.p_x, IDX_ALL, c2n, READ),
                arg_dat(s.p_rho, IDX_ID, None, READ),
                arg_mat(s.mat, INC),
            ),
            "rhs_calc": (
                m.nodes,
                arg_dat(s.p_kg, IDX_ID, None, READ),
                arg_dat(s.p_lift, IDX_ID, None, READ),
                arg_dat(s.p_bc, IDX_ID, None, READ),
                arg_dat(s.p_b, IDX_ID, None, WRITE),
            ),
            "apply_bc": (
                m.nodes,
                arg_dat(s.p_lift, IDX_ID, None, READ),
                arg_dat(s.p_bc, IDX_ID, None, READ),
                arg_dat(s.p_phi, IDX_ID, None, RW),
            ),
            # Matrix-free twins — always present (even in assembled
            # mode) so the tuning signature is one per workload,
            # independent of the operator axis.
            "mf_coeffs": self.matfree.coeffs_args(),
            "mf_kg": self.matfree.apply_args(s.p_lift, s.p_kg, raw=True),
        }
        return self._loop_args_cache

    def _loop_operator_tags(self) -> Dict[str, str]:
        """Which loops belong to which operator realization.

        Loops absent from the map are shared by both modes; the tuner's
        candidate model uses the tags to price an operator candidate
        over only the loops it would actually run.
        """
        return {
            "res_calc": "assembled",
            "mf_coeffs": "matfree",
            "mf_kg": "matfree",
        }

    def _run_loop(self, name: str) -> None:
        set_, *args = self._loop_args()[name]
        par_loop(self.kernels[name], set_, *args, runtime=self.runtime)

    # ------------------------------------------------------------------
    def _assemble_system(self) -> None:
        """Density, stiffness, RHS — the pre-solve half of one step.

        The host folds inside (``Mat.assemble``, ``set_dirichlet``) read
        the Dats they depend on, which flushes any pending chain at
        exactly the right points.
        """
        s = self.state
        self._run_loop("rho_calc")
        s.mat.zero()
        self._run_loop("res_calc")
        s.mat.assemble()
        # RHS from the Dirichlet lift *before* the rows/cols are
        # eliminated: b_free = -(K g)_free, b_bc = g.
        self.operator.apply(s.p_lift, s.p_kg, runtime=self.runtime)
        self._run_loop("rhs_calc")
        s.mat.set_dirichlet(self.bc_mask)
        self._run_loop("apply_bc")

    def _matfree_system(self) -> None:
        """The matrix-free pre-solve half of one step.

        Pure par_loops — no staging, no host folds, ``Mat.assemble``
        never called — so under chained dispatch the entire phase
        traces into one unbroken chain that only flushes when CG first
        reads a scalar.
        """
        self._run_loop("rho_calc")
        self._run_loop("mf_coeffs")
        # RHS from the Dirichlet lift through the *raw* operator
        # (pre-elimination coupling): b_free = -(K g)_free, b_bc = g.
        self._run_loop("mf_kg")
        self._run_loop("rhs_calc")
        self._run_loop("apply_bc")

    def step(self) -> float:
        """One Picard iteration; returns ``max |phi_new - phi_old|``."""
        rt = self._runtime()
        s = self.state
        matfree = self.operator_mode == "matfree"
        build = self._matfree_system if matfree else self._assemble_system
        phi_old = s.p_phi.data[: self.mesh.nodes.size, 0].copy()
        if self.chained:
            with rt.chain(tiling=self.tiling):
                build()
        else:
            build()
        result = cg(
            self.matfree if matfree else self.operator,
            s.p_b, s.p_phi, runtime=self.runtime,
            tol=self.cg_tol, maxiter=self.cg_maxiter,
            chained=self.chained, tiling=self.tiling,
        )
        self.cg_results.append(result)
        delta = float(
            np.max(np.abs(s.p_phi.data[: self.mesh.nodes.size, 0] - phi_old))
        )
        self.delta_history.append(delta)
        self.iterations_run += 1
        return delta

    def run(self, niter: int) -> float:
        """Run ``niter`` Picard iterations; returns the final delta."""
        delta = float("nan")
        for _ in range(niter):
            delta = self.step()
        return delta

    def solve(
        self, picard: int = 3, delta_tol: float = 0.0
    ) -> "AeroResult":
        """Run Picard iterations until ``delta <= delta_tol`` (or the
        iteration budget runs out); returns the convergence record."""
        delta = float("inf")
        for _ in range(picard):
            delta = self.step()
            if delta <= delta_tol:
                break
        return AeroResult(
            picard_iterations=self.iterations_run,
            delta=delta,
            cg_results=list(self.cg_results),
            residual=self.cg_results[-1].residual if self.cg_results
            else float("nan"),
            converged=bool(
                self.cg_results and self.cg_results[-1].converged
            ),
        )

    # ------------------------------------------------------------------
    @property
    def phi(self) -> np.ndarray:
        """Current velocity potential, ``(n_nodes,)``."""
        return self.state.p_phi.data[: self.mesh.nodes.size, 0]

    @property
    def rho(self) -> np.ndarray:
        """Current cell density, ``(n_cells,)``."""
        return self.state.p_rho.data[: self.mesh.cells.size, 0]


@dataclass
class AeroResult:
    """Convergence record of one :meth:`AeroSim.solve`."""

    picard_iterations: int
    delta: float
    cg_results: List[CGResult]
    residual: float
    converged: bool
