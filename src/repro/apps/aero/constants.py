"""Aero flow constants: compressible potential flow around the O-mesh body.

The nondimensionalization fixes the free-stream speed at 1, so the
density law reduces to the standard isentropic relation
``rho = (1 + (gam-1)/2 * M_inf^2 * (1 - |grad phi|^2)) ** (1/(gam-1))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AeroConstants:
    """Flow configuration of the potential-flow solve."""

    #: Free-stream Mach number (0 recovers incompressible Laplace flow).
    mach: float = 0.4
    #: Angle of attack in degrees.
    aoa_deg: float = 3.0
    #: Ratio of specific heats.
    gam: float = 1.4
    #: Density clamp keeping the isentropic base positive when a Picard
    #: iterate overshoots locally (supercritical pockets).
    rho_min: float = 0.05

    @property
    def gm1(self) -> float:
        return self.gam - 1.0

    @property
    def aoa(self) -> float:
        """Angle of attack in radians."""
        return math.radians(self.aoa_deg)

    @property
    def direction(self) -> tuple[float, float]:
        """Unit free-stream direction ``(cos aoa, sin aoa)``."""
        return (math.cos(self.aoa), math.sin(self.aoa))


DEFAULT_CONSTANTS = AeroConstants()
