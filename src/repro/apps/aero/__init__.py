"""Aero: nonlinear potential-flow FEM + CG — the sparse-matrix workload."""

from .constants import DEFAULT_CONSTANTS, AeroConstants
from .driver import AeroResult, AeroSim, AeroState
from .kernels import make_kernels

__all__ = [
    "AeroConstants",
    "AeroResult",
    "AeroSim",
    "AeroState",
    "DEFAULT_CONSTANTS",
    "make_kernels",
]
