"""kernelc — the kernel-compilation subsystem (IR + three emitters).

The paper's central mechanism is a code generator that turns one
high-level kernel into specialized scalar *and* vectorized
implementations (Fig 2b's generated stubs; Section 4's cross-element
SIMD kernels).  This package is that generator:

``ir``
    :func:`parse_kernel` reads a scalar Python kernel with :mod:`ast`
    and lowers it into a small validated IR (straight-line statements,
    per-argument loads/stores, branches, bounded ``range`` loops).
``scalar``
    The specialized per-shape *loop stub* emitter (promoted from
    ``core/codegen.py``), covering direct, indirect, vector — including
    vector INC — and global-reduction arguments.
``vector``
    The batched-kernel emitter: one NumPy function over ``(lanes, dim)``
    gathered blocks per argument-shape signature, branches lowered to
    ``select`` masks, results bitwise identical to the scalar form.
``native``
    The chain-level C emitter: a whole traced loop chain (or one eager
    loop) lowered to a single C translation unit, compiled with the
    system compiler and replayed through cffi — bitwise identical to
    sequential eager execution, with a sha256-keyed on-disk ``.so``
    cache (the runtime's sixth cache kind).
``cache``
    The per-shape compile cache (the runtime's fifth cache kind,
    surfaced in :meth:`Runtime.stats`).

Applications write **only scalar kernels**; every batched backend
requests the generated vector form through
:meth:`repro.core.kernel.Kernel.vector_for`.
"""

from .flops import estimate_flops
from .cache import (
    DEFAULT_KERNELC_CACHE_ENTRIES,
    GLOBAL_CACHE,
    KernelCompileCache,
    batched_flags,
    cache_stats,
    clear_cache,
    kernel_ir,
    param_shapes,
    vector_kernel_for,
    vector_source_for,
    vectorizable,
)
from .ir import KernelIR, UnvectorizableKernel, parse_kernel
from .native import (
    NativeUnsupported,
    build_chain_program,
    build_eager_program,
    compiler_available,
    emit_chain_source,
    native_cache_dir,
    native_cache_stats,
    reset_native_cache,
    source_key,
)
from .scalar import compile_loop, generate_loop_source, loop_shape_key, supports
from .vector import VectorEmitter, compile_vector, emit_vector_source

__all__ = [
    "DEFAULT_KERNELC_CACHE_ENTRIES",
    "GLOBAL_CACHE",
    "KernelCompileCache",
    "KernelIR",
    "NativeUnsupported",
    "UnvectorizableKernel",
    "VectorEmitter",
    "batched_flags",
    "build_chain_program",
    "build_eager_program",
    "cache_stats",
    "clear_cache",
    "compile_loop",
    "compile_vector",
    "compiler_available",
    "emit_chain_source",
    "emit_vector_source",
    "estimate_flops",
    "generate_loop_source",
    "kernel_ir",
    "loop_shape_key",
    "native_cache_dir",
    "native_cache_stats",
    "param_shapes",
    "parse_kernel",
    "reset_native_cache",
    "source_key",
    "supports",
    "vector_kernel_for",
    "vector_source_for",
    "vectorizable",
]
