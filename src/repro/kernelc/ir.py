"""Kernel IR: parse a scalar Python kernel into a small validated IR.

The paper's code generator consumes one high-level kernel description and
emits specialized scalar *and* vectorized implementations (Fig 2b's
generated stubs, Section 4's cross-element SIMD kernels).  Our "high-level
description" is the scalar Python function itself: :func:`parse_kernel`
reads its source with :mod:`ast` and lowers it into a deliberately small
IR —

* straight-line statements (assignments, augmented assignments),
* per-argument loads and stores (recorded in ``param_reads`` /
  ``param_writes``),
* scalar arithmetic expressions over a whitelisted vocabulary
  (operators, comparisons, ``np.*`` functions, the :mod:`repro.simd`
  intrinsics, branchless helper functions),
* structured branches (``if``/``elif``/``else``, conditional
  expressions), and
* bounded ``for _ in range(k)`` loops over an argument's ``dim``.

Anything outside that subset raises :class:`UnvectorizableKernel` — the
situation the paper's compiler auto-vectorizer gives up on — and the
backends fall back to scalar execution, so an over-eager parse can never
turn a correct kernel into a wrong one.

Expressions are kept as (validated) ``ast`` nodes inside the IR
statements: the emitters rewrite them structurally, which preserves the
exact floating-point operation order of the scalar source — the property
the bitwise-equivalence test suite rests on.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..simd import intrinsics as _intrinsics

#: The branchless SIMD vocabulary (repro.simd) — recognized by identity.
INTRINSIC_FUNCTIONS = frozenset(
    {
        _intrinsics.select,
        _intrinsics.vmin,
        _intrinsics.vmax,
        _intrinsics.vabs,
        _intrinsics.vsqrt,
        _intrinsics.vfma,
        _intrinsics.vrecip,
    }
)

#: Builtins with a direct batched equivalent (rewritten by the emitter).
SAFE_BUILTINS = frozenset({"abs", "min", "max"})

_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.Mod,
           ast.FloorDiv)
_UNARYOPS = (ast.USub, ast.UAdd)
_AUGOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)

#: Recursion bound for branchless-helper validation (_hll_flux calling
#: _velocities calling ... must bottom out).
_HELPER_DEPTH_LIMIT = 4


class UnvectorizableKernel(Exception):
    """The scalar kernel falls outside the IR's vectorizable subset."""


# ----------------------------------------------------------------------
# IR statements.  Expressions stay as validated ast nodes.
# ----------------------------------------------------------------------
@dataclass
class SAssign:
    """``target(s) = value`` — Name, Tuple-of-Name or Subscript targets."""

    targets: List[ast.expr]
    value: ast.expr


@dataclass
class SAug:
    """``target op= value`` with ``op`` in ``+ - * /``."""

    target: ast.expr
    op: ast.operator
    value: ast.expr


@dataclass
class SFor:
    """``for var in range(start, stop, step)`` with constant bounds."""

    var: str
    start: int
    stop: int
    step: int
    body: List[object]


@dataclass
class SIf:
    """Structured branch; lowered to masks by the vector emitter."""

    test: ast.expr
    body: List[object]
    orelse: List[object]


@dataclass
class KernelIR:
    """A parsed kernel: parameters, statements, and load/store summary."""

    name: str
    params: Tuple[str, ...]
    body: List[object]
    #: Name-resolution namespace (function globals + closure cells) the
    #: emitters compile generated code against.
    namespace: Dict[str, object]
    #: Dedented source of the scalar function (for diagnostics/golden).
    source: str
    param_reads: Set[str] = field(default_factory=set)
    param_writes: Set[str] = field(default_factory=set)


# ----------------------------------------------------------------------
# Namespace assembly and helper-function validation.
# ----------------------------------------------------------------------
def function_namespace(fn) -> Dict[str, object]:
    """Globals plus closure cells — how the kernel's names resolve."""
    ns = dict(getattr(fn, "__globals__", {}))
    freevars = getattr(fn.__code__, "co_freevars", ())
    closure = getattr(fn, "__closure__", None) or ()
    for name, cell in zip(freevars, closure):
        try:
            ns[name] = cell.cell_contents
        except ValueError:  # pragma: no cover - empty cell
            pass
    return ns


def _is_numpy_callable(obj) -> bool:
    if isinstance(obj, np.ufunc):
        return True
    module = getattr(obj, "__module__", None) or ""
    return callable(obj) and module.split(".")[0] == "numpy"


def is_lane_safe_helper(fn, _depth: int = 0) -> bool:
    """Can ``fn`` be called unchanged on batched ``(lanes,)`` operands?

    True for straight-line pure functions (assignments and a return) whose
    expressions stay inside the IR vocabulary — Volna's ``_hll_flux`` /
    ``_velocities`` pattern: all conditionals already expressed through
    ``select``-style intrinsics, so the *same* body serves scalars and
    lane arrays.  The answer is cached on the function object.
    """
    cached = getattr(fn, "_kernelc_lane_safe", None)
    if cached is not None:
        return cached
    safe = _check_helper(fn, _depth)
    # A True verdict validated every nested call within the remaining
    # depth budget and holds at any depth; a False computed mid-recursion
    # may only mean the budget ran out, so cache negatives only from a
    # full-budget (depth 0) check.
    if safe or _depth == 0:
        try:
            fn._kernelc_lane_safe = safe
        except (AttributeError, TypeError):  # pragma: no cover - builtins
            pass
    return safe


def _check_helper(fn, depth: int) -> bool:
    if depth >= _HELPER_DEPTH_LIMIT or not inspect.isfunction(fn):
        return False
    try:
        tree = ast.parse(textwrap.dedent(inspect.getsource(fn)))
    except (OSError, TypeError, SyntaxError):
        return False
    if not (tree.body and isinstance(tree.body[0], ast.FunctionDef)):
        return False
    fd = tree.body[0]
    ns = function_namespace(fn)
    local = {a.arg for a in fd.args.args}
    for stmt in fd.body:
        if _is_docstring(stmt):
            continue
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            names = (
                [target] if isinstance(target, ast.Name)
                else list(target.elts) if isinstance(target, ast.Tuple)
                else None
            )
            if names is None or not all(
                isinstance(t, ast.Name) for t in names
            ):
                return False
            try:
                _check_expr(stmt.value, ns, local, set(), depth + 1)
            except UnvectorizableKernel:
                return False
            local.update(t.id for t in names)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            try:
                _check_expr(stmt.value, ns, local, set(), depth + 1)
            except UnvectorizableKernel:
                return False
        else:
            return False
    return True


# ----------------------------------------------------------------------
# Expression validation.
# ----------------------------------------------------------------------
def _refuse(node: ast.AST, why: str) -> UnvectorizableKernel:
    snippet = ast.unparse(node) if isinstance(node, ast.AST) else str(node)
    return UnvectorizableKernel(f"{why}: {snippet!r}")


def _check_expr(node, ns, local_names, loop_vars, depth=0) -> None:
    """Validate one expression against the IR vocabulary."""
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, (int, float, bool)):
            raise _refuse(node, "non-numeric constant")
        return
    if isinstance(node, ast.Name):
        return
    if isinstance(node, ast.BinOp):
        if not isinstance(node.op, _BINOPS):
            raise _refuse(node, "unsupported binary operator")
        _check_expr(node.left, ns, local_names, loop_vars, depth)
        _check_expr(node.right, ns, local_names, loop_vars, depth)
        return
    if isinstance(node, ast.UnaryOp):
        if not isinstance(node.op, _UNARYOPS):
            raise _refuse(node, "unsupported unary operator")
        _check_expr(node.operand, ns, local_names, loop_vars, depth)
        return
    if isinstance(node, ast.Compare):
        if len(node.ops) != 1:
            raise _refuse(node, "chained comparisons are lane-ambiguous")
        _check_expr(node.left, ns, local_names, loop_vars, depth)
        _check_expr(node.comparators[0], ns, local_names, loop_vars, depth)
        return
    if isinstance(node, ast.BoolOp):
        raise _refuse(
            node, "and/or have no lane-wise meaning; use select()"
        )
    if isinstance(node, ast.IfExp):
        for child in (node.test, node.body, node.orelse):
            _check_expr(child, ns, local_names, loop_vars, depth)
        return
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            _check_expr(elt, ns, local_names, loop_vars, depth)
        return
    if isinstance(node, ast.Subscript):
        _check_expr(node.value, ns, local_names, loop_vars, depth)
        _check_index(node.slice, ns, local_names, loop_vars)
        return
    if isinstance(node, ast.Call):
        _check_call(node, ns, local_names, loop_vars, depth)
        return
    raise _refuse(node, "unsupported expression")


def _check_index(node, ns, local_names, loop_vars) -> None:
    """Subscript indices must be lane-invariant (constants / loop vars)."""
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            _check_index(elt, ns, local_names, loop_vars)
        return
    if isinstance(node, ast.Slice):
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                _check_index(part, ns, local_names, loop_vars)
        return
    if isinstance(node, ast.Constant):
        if not isinstance(node.value, int):
            raise _refuse(node, "non-integer subscript")
        return
    if isinstance(node, ast.Name):
        if node.id in loop_vars:
            return
        resolved = ns.get(node.id)
        if isinstance(resolved, (int, np.integer)) and node.id not in local_names:
            return
        raise _refuse(
            node,
            "subscript index must be a constant or range() loop variable "
            "(lane-dependent indexing cannot be vectorized)",
        )
    if isinstance(node, (ast.BinOp, ast.UnaryOp)):
        children = (
            (node.left, node.right) if isinstance(node, ast.BinOp)
            else (node.operand,)
        )
        if isinstance(node, ast.BinOp) and not isinstance(node.op, _BINOPS):
            raise _refuse(node, "unsupported operator in subscript")
        for child in children:
            _check_index(child, ns, local_names, loop_vars)
        return
    raise _refuse(node, "unsupported subscript index")


def _check_call(node: ast.Call, ns, local_names, loop_vars, depth) -> None:
    if node.keywords:
        raise _refuse(node, "keyword arguments in kernel calls")
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in local_names:
            raise _refuse(node, "call through a local variable")
        if name in SAFE_BUILTINS and name not in ns:
            if name in ("min", "max") and len(node.args) != 2:
                raise _refuse(node, f"{name}() must take exactly 2 operands")
            if name == "abs" and len(node.args) != 1:
                raise _refuse(node, "abs() must take exactly 1 operand")
        else:
            resolved = ns.get(name)
            if resolved is None:
                raise _refuse(node, "unresolvable function")
            if resolved in INTRINSIC_FUNCTIONS:
                pass
            elif _is_numpy_callable(resolved):
                pass
            elif is_lane_safe_helper(resolved, depth):
                pass
            else:
                raise _refuse(
                    node,
                    "call target is neither a numpy function, a "
                    "repro.simd intrinsic, nor a branchless helper",
                )
    elif isinstance(func, ast.Attribute):
        resolved = _resolve_attribute(func, ns)
        if resolved is None or not _is_numpy_callable(resolved):
            raise _refuse(node, "only numpy attribute calls are supported")
    else:
        raise _refuse(node, "unsupported call form")
    for arg in node.args:
        _check_expr(arg, ns, local_names, loop_vars, depth)


def _resolve_attribute(node: ast.Attribute, ns):
    parts = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    obj = ns.get(cur.id)
    for attr in reversed(parts):
        if obj is None:
            return None
        obj = getattr(obj, attr, None)
    return obj


# ----------------------------------------------------------------------
# Statement building.
# ----------------------------------------------------------------------
def _is_docstring(stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _const_int(node, ns) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        resolved = ns.get(node.id)
        if isinstance(resolved, (int, np.integer)):
            return int(resolved)
    return None


class _Builder:
    """Lowers a FunctionDef body into IR statements, validating as it goes."""

    def __init__(self, params: Sequence[str], ns: Dict[str, object]) -> None:
        self.params = tuple(params)
        self.ns = ns
        #: Every name bound inside the kernel (params + locals) — used to
        #: refuse calls through locals and index-by-local.
        self.local_names: Set[str] = set(params)
        self.loop_vars: Set[str] = set()
        #: local name -> root parameter it aliases (``x1 = x[k]``).
        self.alias_root: Dict[str, str] = {}
        self.param_reads: Set[str] = set()
        self.param_writes: Set[str] = set()

    # -- bookkeeping ---------------------------------------------------
    def _note_reads(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                root = self.alias_root.get(sub.id, sub.id)
                if root in self.params:
                    self.param_reads.add(root)

    def _store_root(self, target: ast.expr) -> Optional[str]:
        cur = target
        while isinstance(cur, ast.Subscript):
            cur = cur.value
        if isinstance(cur, ast.Name):
            return self.alias_root.get(cur.id, cur.id)
        return None

    def _note_store(self, target: ast.expr) -> None:
        root = self._store_root(target)
        if root in self.params:
            self.param_writes.add(root)

    def _mark_alias(self, name: str, value: ast.expr) -> None:
        cur = value
        while isinstance(cur, ast.Subscript):
            cur = cur.value
        if isinstance(cur, ast.Name):
            root = self.alias_root.get(cur.id, cur.id)
            if root in self.params and isinstance(
                value, (ast.Name, ast.Subscript)
            ):
                self.alias_root[name] = root
                return
        self.alias_root.pop(name, None)

    # -- statements ----------------------------------------------------
    def build_block(self, stmts) -> List[object]:
        out: List[object] = []
        for stmt in stmts:
            built = self.build_stmt(stmt)
            if built is not None:
                out.append(built)
        return out

    def build_stmt(self, stmt):
        if _is_docstring(stmt) or isinstance(stmt, ast.Pass):
            return None
        if isinstance(stmt, ast.Assign):
            return self._build_assign(stmt)
        if isinstance(stmt, ast.AugAssign):
            return self._build_aug(stmt)
        if isinstance(stmt, ast.For):
            return self._build_for(stmt)
        if isinstance(stmt, ast.If):
            return self._build_if(stmt)
        raise _refuse(stmt, "unsupported statement")

    def _check(self, node: ast.expr) -> None:
        _check_expr(node, self.ns, self.local_names, self.loop_vars)

    def _check_store_target(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Subscript):
            raise _refuse(target, "unsupported store target")
        cur = target
        while isinstance(cur, ast.Subscript):
            _check_index(cur.slice, self.ns, self.local_names, self.loop_vars)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            raise _refuse(target, "stores must index a named array")
        if cur.id not in self.local_names:
            raise _refuse(
                target, "stores must target a parameter or local array"
            )

    def _build_assign(self, stmt: ast.Assign):
        if len(stmt.targets) != 1:
            raise _refuse(stmt, "chained assignment")
        target = stmt.targets[0]
        self._check(stmt.value)
        self._note_reads(stmt.value)
        if isinstance(target, ast.Name):
            if target.id in self.params:
                raise _refuse(stmt, "rebinding a kernel parameter")
            self.local_names.add(target.id)
            self._mark_alias(target.id, stmt.value)
            return SAssign([target], stmt.value)
        if isinstance(target, ast.Tuple):
            if not all(isinstance(t, ast.Name) for t in target.elts):
                raise _refuse(stmt, "tuple targets must be plain names")
            values = (
                stmt.value.elts
                if isinstance(stmt.value, ast.Tuple)
                and len(stmt.value.elts) == len(target.elts)
                else [None] * len(target.elts)
            )
            for t, v in zip(target.elts, values):
                if t.id in self.params:
                    raise _refuse(stmt, "rebinding a kernel parameter")
                self.local_names.add(t.id)
                if v is not None:
                    self._mark_alias(t.id, v)
                else:
                    self.alias_root.pop(t.id, None)
            return SAssign([target], stmt.value)
        if isinstance(target, ast.Subscript):
            self._check_store_target(target)
            self._note_store(target)
            return SAssign([target], stmt.value)
        raise _refuse(stmt, "unsupported assignment target")

    def _build_aug(self, stmt: ast.AugAssign):
        if not isinstance(stmt.op, _AUGOPS):
            raise _refuse(stmt, "unsupported augmented assignment operator")
        self._check(stmt.value)
        self._note_reads(stmt.value)
        if isinstance(stmt.target, ast.Name):
            if stmt.target.id in self.params:
                raise _refuse(stmt, "rebinding a kernel parameter")
            if stmt.target.id not in self.local_names:
                raise _refuse(stmt, "augmented assignment to unbound name")
            if stmt.target.id in self.alias_root:
                # ``x1 = x[k]; x1 += v`` mutates the parameter through a
                # view in the scalar form; the emitter's local-rebind
                # lowering would drop that in-place store, so refuse and
                # let the kernel run scalar.
                raise _refuse(
                    stmt, "augmented assignment through a parameter view"
                )
            return SAug(stmt.target, stmt.op, stmt.value)
        if isinstance(stmt.target, ast.Subscript):
            self._check_store_target(stmt.target)
            self._note_store(stmt.target)
            self._note_reads(stmt.target)
            return SAug(stmt.target, stmt.op, stmt.value)
        raise _refuse(stmt, "unsupported augmented assignment target")

    def _build_for(self, stmt: ast.For):
        if stmt.orelse:
            raise _refuse(stmt, "for/else")
        if not isinstance(stmt.target, ast.Name):
            raise _refuse(stmt, "loop target must be a plain name")
        it = stmt.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and not it.keywords
            and 1 <= len(it.args) <= 3
        ):
            raise _refuse(stmt, "only range() loops with constant bounds")
        bounds = [_const_int(a, self.ns) for a in it.args]
        if any(b is None for b in bounds):
            raise _refuse(
                stmt, "range() bounds must be integer constants (a dim)"
            )
        if len(bounds) == 1:
            start, stop, step = 0, bounds[0], 1
        elif len(bounds) == 2:
            start, stop, step = bounds[0], bounds[1], 1
        else:
            start, stop, step = bounds
        var = stmt.target.id
        if var in self.params:
            raise _refuse(stmt, "loop variable shadows a parameter")
        self.local_names.add(var)
        self.loop_vars.add(var)
        body = self.build_block(stmt.body)
        return SFor(var, start, stop, step, body)

    def _build_if(self, stmt: ast.If):
        self._check(stmt.test)
        self._note_reads(stmt.test)
        body = self.build_block(stmt.body)
        orelse = self.build_block(stmt.orelse)
        return SIf(stmt.test, body, orelse)


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------
def parse_kernel(fn) -> KernelIR:
    """Parse a scalar kernel function into a :class:`KernelIR`.

    Raises :class:`UnvectorizableKernel` for anything outside the
    vectorizable subset; callers treat that as "no vector form" and run
    the scalar path, so the parse is allowed to be strict.
    """
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise UnvectorizableKernel(f"kernel source unavailable: {exc}")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - dedent artifacts
        raise UnvectorizableKernel(f"kernel source unparsable: {exc}")
    if not (tree.body and isinstance(tree.body[0], ast.FunctionDef)):
        raise UnvectorizableKernel("kernel source is not a function")
    fd = tree.body[0]
    args = fd.args
    if (
        args.vararg
        or args.kwarg
        or args.kwonlyargs
        or args.defaults
        or args.kw_defaults
    ):
        raise UnvectorizableKernel(
            "kernels must take plain positional parameters"
        )
    params = tuple(a.arg for a in args.posonlyargs + args.args)
    ns = function_namespace(fn)
    builder = _Builder(params, ns)
    body = builder.build_block(fd.body)
    return KernelIR(
        name=fd.name,
        params=params,
        body=body,
        namespace=ns,
        source=source,
        param_reads=builder.param_reads,
        param_writes=builder.param_writes,
    )
