"""Scalar emitter: specialized per-shape loop stubs (paper Fig 2b).

OP2 is not an interpreter — a source-to-source translator turns every
``op_par_loop`` call site into a *specialized* stub with the argument
handling unrolled: indirection indices become named locals, pointer
arithmetic is inlined, conditionals and loops over the argument list
disappear.  Section 5 credits exactly this specialization (replacing the
generic function-pointer dispatcher) with enabling the compiler
optimizations their baseline numbers rely on.

This module is that mechanism's scalar half, promoted out of
``core/codegen.py`` into the kernel-compilation package:
:func:`generate_loop_source` emits the text of a specialized loop
function for one loop *shape* (iteration set + argument descriptors),
:func:`compile_loop` ``exec``-s it, and
:class:`~repro.backends.codegen.CodegenBackend` caches the compiled
stubs per shape.

The generator covers every argument form of Fig 2b — direct, single-slot
indirect, vector arguments (including **INC** vector arguments, which get
a hoisted private accumulator zeroed per element and applied with
``np.add.at``, exactly the generic interpreter's operation sequence) and
global reductions.  Only writing non-commutative vector arguments
(``WRITE``/``RW`` through ``IDX_ALL``) still fall back to the generic
interpreter, mirroring OP2's own fallback for unsupported shapes.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..core.access import Access, Arg


def loop_shape_key(kernel_name: str, args: Sequence[Arg]) -> Tuple:
    """Hashable description of a loop's argument structure."""
    shape = []
    for arg in args:
        if arg.is_global:
            shape.append(("gbl", arg.dat.dim, arg.access.name))
        else:
            shape.append(
                (
                    "dat",
                    arg.dat.dim,
                    arg.index,
                    arg.map.arity if arg.map is not None else 0,
                    arg.access.name,
                )
            )
    return (kernel_name,) + tuple(shape)


def supports(args: Sequence[Arg]) -> bool:
    """Can a specialized stub be generated for this argument list?

    Writing vector (``IDX_ALL``) arguments are supported only for INC
    (private accumulator + ``np.add.at``); WRITE/RW/MIN/MAX vector
    arguments need the generic interpreter's gathered-copy writeback
    machinery and fall back to it.
    """
    for arg in args:
        if arg.is_vector and arg.access not in (Access.READ, Access.INC):
            return False
    return True


def generate_loop_source(kernel_name: str, args: Sequence[Arg]) -> str:
    """Emit the specialized stub's source (the Fig 2b transformation).

    The generated function has signature::

        op_par_loop_<kernel>(start, end, user_kernel, data, maps, red)

    where ``data[i]`` is argument *i*'s array, ``maps[i]`` its map values
    (or None) and ``red[i]`` its reduction accumulator (globals only).
    """
    name = f"op_par_loop_{kernel_name}"
    lines = [
        f"def {name}(start, end, user_kernel, data, maps, red):",
        '    """Generated specialized stub — do not edit by hand."""',
    ]
    # Hoist every per-argument lookup out of the element loop.
    call_operands = []
    pre_element = []   # per-element statements before the kernel call
    post_element = []  # per-element statements after the kernel call
    for i, arg in enumerate(args):
        if arg.is_global:
            if arg.access.is_reduction:
                lines.append(f"    arg{i} = red[{i}]")
            else:
                lines.append(f"    arg{i} = data[{i}]")
            call_operands.append(f"arg{i}")
        elif arg.is_direct:
            lines.append(f"    dat{i} = data[{i}]")
            call_operands.append(f"dat{i}[n]")
        elif arg.is_vector:
            lines.append(f"    dat{i} = data[{i}]")
            lines.append(f"    map{i} = maps[{i}]")
            if arg.access is Access.INC:
                # Private per-element accumulator (OP2's arg*_l locals),
                # zeroed per element and applied serially afterwards —
                # operation-for-operation the generic interpreter's
                # sequence, so results stay bitwise identical.
                arity, dim = arg.map.arity, arg.dat.dim
                lines.append(
                    f"    buf{i} = np.zeros(({arity}, {dim}), "
                    f"dat{i}.dtype)"
                )
                pre_element.append(f"buf{i}[...] = 0.0")
                post_element.append(f"np.add.at(dat{i}, map{i}[n], buf{i})")
                call_operands.append(f"buf{i}")
            else:
                call_operands.append(f"dat{i}[map{i}[n]]")
        else:
            lines.append(f"    dat{i} = data[{i}]")
            lines.append(f"    map{i}_col = maps[{i}][:, {arg.index}]")
            call_operands.append(f"dat{i}[map{i}_col[n]]")
    lines.append("    for n in range(start, end):")
    for stmt in pre_element:
        lines.append(f"        {stmt}")
    lines.append(f"        user_kernel({', '.join(call_operands)})")
    for stmt in post_element:
        lines.append(f"        {stmt}")
    return "\n".join(lines) + "\n"


def compile_loop(kernel_name: str, args: Sequence[Arg]) -> Callable:
    """Compile the generated stub and return the callable."""
    source = generate_loop_source(kernel_name, args)
    namespace: Dict[str, object] = {"np": np}
    exec(compile(source, f"<generated op_par_loop_{kernel_name}>", "exec"),
         namespace)
    fn = namespace[f"op_par_loop_{kernel_name}"]
    fn.__source__ = source  # type: ignore[attr-defined]
    return fn
