"""Per-shape kernel compile cache — the fourth cache kind of the runtime.

The paper's build flow generates each kernel's vectorized incarnation
once and reuses it for the whole run; here compilation happens lazily at
first execution and is memoized per ``(kernel, argument-shape)`` pair:

* the **IR parse** is cached on the :class:`~repro.core.kernel.Kernel`
  object itself (one parse per kernel, shared by every shape), and
* the **compiled vector callable** is cached here, keyed by the kernel's
  uid plus the tuple of per-argument lane flags (READ globals are
  broadcast constants and stay scalar-shaped; every other argument gains
  the ``lanes`` axis) — the only shape property the emitter depends on.

Unvectorizable kernels cache a negative entry, so the scalar fallback
decision is also O(1) after first sight.  Counters (hits / misses /
failures / evictions) surface through :meth:`Runtime.stats` next to the
loop, plan and chain cache counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from ..core.access import IDX_ALL, Access, Arg
from ..core.glob import Global
from .ir import KernelIR, UnvectorizableKernel, parse_kernel
from .vector import compile_vector, compile_vector_source, emit_vector_source

#: Default LRU bound for compiled vector kernels.
DEFAULT_KERNELC_CACHE_ENTRIES = 512


def batched_flags(args: Sequence[Arg]) -> Tuple[bool, ...]:
    """Which parameters carry a leading ``lanes`` axis for this loop.

    READ globals are the only scalar-shaped parameters (broadcast
    constants); reduction globals become per-lane partial accumulators
    and every Dat argument is gathered into a lane-major block.
    """
    return tuple(
        not (arg.is_global and arg.access is Access.READ) for arg in args
    )


def param_shapes(args: Sequence[Arg]) -> Tuple[Tuple[bool, Optional[int]], ...]:
    """Per-parameter (batched, fuse_dim) signature for the emitter.

    ``fuse_dim`` is the trailing-axis extent a ``range(dim)`` loop over
    the parameter may be fused across: the Dat's ``dim`` for plain data
    arguments and reduction globals, ``None`` for vector (``IDX_ALL``)
    arguments — whose single trailing index selects a map slot, not a
    component — and for scalar-shaped READ globals.
    """
    # Hot path: one call per eager par_loop dispatch, so classify with
    # direct attribute checks instead of the (lazily importing) Arg
    # properties.
    shapes = []
    for arg in args:
        dat = arg.dat
        if isinstance(dat, Global):
            if arg.access is Access.READ:
                shapes.append((False, None))
            else:
                shapes.append((True, int(dat.dim)))
        elif arg.index == IDX_ALL:
            shapes.append((True, None))
        else:
            shapes.append((True, int(dat.dim)))
    return tuple(shapes)


def kernel_ir(kernel) -> KernelIR:
    """The kernel's parsed IR, cached on the Kernel object.

    Raises :class:`UnvectorizableKernel` (also cached) when the scalar
    source falls outside the vectorizable subset.
    """
    cached = getattr(kernel, "_kernelc_ir", None)
    if cached is None:
        try:
            cached = parse_kernel(kernel.scalar)
        except UnvectorizableKernel as exc:
            cached = exc
        kernel._kernelc_ir = cached
    if isinstance(cached, UnvectorizableKernel):
        raise cached
    return cached


def vectorizable(kernel) -> bool:
    """Whether a vector form can be derived from the scalar source."""
    try:
        kernel_ir(kernel)
    except UnvectorizableKernel:
        return False
    return True


class KernelCompileCache:
    """LRU-bounded map of (kernel uid, shape) -> compiled vector kernel."""

    def __init__(self, max_entries: Optional[int] = DEFAULT_KERNELC_CACHE_ENTRIES) -> None:
        self.max_entries = max_entries
        self._entries: OrderedDict[Tuple, Optional[object]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.failures = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def vector_for(self, kernel, args: Sequence[Arg]):
        """Compiled batched kernel for this shape, or None (scalar only)."""
        key = (kernel._uid, param_shapes(args))
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        fn = self._load_or_compile(kernel, param_shapes(args))
        self._entries[key] = fn
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
        return fn

    def _load_or_compile(self, kernel, shapes):
        """Memory-miss path: persistent kernelc store, then the emitter.

        The store holds generated source text per (scalar source digest,
        shape signature) — a warm process compiles the persisted text
        without re-running the emitter; ``source=None`` documents replay
        the unvectorizable (scalar-fallback) decision.  Kernels without
        retrievable source skip the store entirely.
        """
        from .. import store

        skey = store.kernelc_key(kernel, shapes)
        kstore = store.store_for("kernelc")
        payload = kstore.get(skey)
        if payload is not None:
            try:
                source = store.decode_kernelc(payload)
                if source is None:
                    self.failures += 1
                    return None
                return compile_vector_source(kernel_ir(kernel), source)
            except Exception:
                store.bump("kernelc", "corrupt")
                store.unlink_quiet(kstore.path_for(skey))
        store.count_build("kernelc")
        try:
            fn = compile_vector(kernel_ir(kernel), shapes)
        except UnvectorizableKernel:
            self.failures += 1
            kstore.put(skey, store.encode_kernelc(None))
            return None
        kstore.put(skey, store.encode_kernelc(fn.__source__))
        return fn

    def vector_source_for(self, kernel, args: Sequence[Arg]) -> str:
        """Generated source text (for --dump-kernel and golden tests)."""
        return emit_vector_source(kernel_ir(kernel), param_shapes(args))

    def stats(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "failures": self.failures,
            "evictions": self.evictions,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.failures = 0
        self.evictions = 0


#: Process-wide cache: kernels and their generated forms are immutable,
#: so one cache serves every Runtime (stats are surfaced per-runtime
#: through Runtime.stats()).
GLOBAL_CACHE = KernelCompileCache()


def vector_kernel_for(kernel, args: Sequence[Arg]):
    return GLOBAL_CACHE.vector_for(kernel, args)


def vector_source_for(kernel, args: Sequence[Arg]) -> str:
    return GLOBAL_CACHE.vector_source_for(kernel, args)


def cache_stats() -> Dict[str, object]:
    return GLOBAL_CACHE.stats()


def clear_cache() -> None:
    GLOBAL_CACHE.clear()
