"""Static per-element flop estimates from the parsed kernel IR.

The transfer model (:mod:`repro.perfmodel`) prices loops purely in
bytes moved, which cannot distinguish a bandwidth-bound stream (SpMV)
from a compute-bound one (the matrix-free quadrature re-evaluation,
whose arithmetic dwarfs its traffic).  This module supplies the missing
axis: walk a kernel's IR once, count the floating-point operators in
its expressions, multiply loop bodies by their constant trip counts,
and report flops *per iteration-set element*.  The estimate feeds
``Runtime.stats()["profile"]`` (``est_flops`` / ``est_gflops`` /
``bound``) and the tuner's candidate ranking
(:func:`repro.tune.model.predict_candidate`'s compute roofline term).

Address arithmetic inside subscripts (``rho[C * k + c]``) is *not*
counted — it prices to gather/scatter traffic, not arithmetic — and a
kernel outside the parseable subset falls back to its author-declared
:class:`~repro.core.kernel.KernelInfo` figures.
"""

from __future__ import annotations

import ast

from .ir import SAssign, SAug, SFor, SIf, UnvectorizableKernel

#: Operation weights for non-trivial intrinsics: ``sqrt`` is a (slow)
#: hardware instruction; generic powers and other transcendentals
#: expand to polynomial evaluations.
SQRT_FLOPS = 4.0
TRANSCENDENTAL_FLOPS = 8.0

#: Calls priced as one flop (selection / sign ops).
_UNIT_CALLS = {"abs", "min", "max", "fabs", "fmin", "fmax", "copysign"}
_SQRT_CALLS = {"sqrt"}


def _call_name(func: ast.expr) -> str:
    """Rightmost identifier of a call target (``np.sqrt`` -> ``sqrt``)."""
    if isinstance(func, ast.Attribute):
        return str(func.attr)
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _expr_flops(node: ast.expr) -> float:
    """Floating-point operations in one expression subtree."""
    if isinstance(node, ast.BinOp):
        return 1.0 + _expr_flops(node.left) + _expr_flops(node.right)
    if isinstance(node, ast.UnaryOp):
        cost = 1.0 if isinstance(node.op, ast.USub) else 0.0
        return cost + _expr_flops(node.operand)
    if isinstance(node, ast.Compare):
        return float(len(node.comparators)) + _expr_flops(node.left) + sum(
            _expr_flops(c) for c in node.comparators
        )
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        if name in _SQRT_CALLS:
            cost = SQRT_FLOPS
        elif name in _UNIT_CALLS:
            cost = 1.0
        else:
            cost = TRANSCENDENTAL_FLOPS
        return cost + sum(_expr_flops(a) for a in node.args)
    if isinstance(node, ast.Subscript):
        # Index expressions are address math, not arithmetic.
        return _expr_flops(node.value)
    if isinstance(node, ast.IfExp):
        return (
            1.0
            + _expr_flops(node.test)
            + _expr_flops(node.body)
            + _expr_flops(node.orelse)
        )
    if isinstance(node, (ast.Tuple, ast.List)):
        return sum(_expr_flops(e) for e in node.elts)
    return 0.0


def _body_flops(body) -> float:
    total = 0.0
    for stmt in body:
        if isinstance(stmt, SAssign):
            total += _expr_flops(stmt.value)
        elif isinstance(stmt, SAug):
            total += 1.0 + _expr_flops(stmt.value)
        elif isinstance(stmt, SFor):
            trips = len(range(stmt.start, stmt.stop, stmt.step))
            total += trips * _body_flops(stmt.body)
        elif isinstance(stmt, SIf):
            # Batched backends evaluate both arms under masks; price the
            # union (also the safe upper bound for the scalar path).
            total += (
                _expr_flops(stmt.test)
                + _body_flops(stmt.body)
                + _body_flops(stmt.orelse)
            )
    return total


def estimate_flops(kernel) -> float:
    """Estimated flops per iteration-set element for one kernel.

    Counts arithmetic operators in the kernel's parsed IR (constant
    trip counts unrolled, subscript address math excluded, intrinsic
    calls weighted).  Kernels outside the parseable subset fall back to
    the author-declared ``kernel.info.flops`` (plus weighted
    ``transcendentals``); a bare callable with neither estimates 0.
    """
    try:
        from .cache import kernel_ir

        ir = kernel_ir(kernel)
        return float(_body_flops(ir.body))
    except (UnvectorizableKernel, AttributeError, TypeError):
        info = getattr(kernel, "info", None)
        if info is None:
            return 0.0
        return float(getattr(info, "flops", 0)) + TRANSCENDENTAL_FLOPS * float(
            getattr(info, "transcendentals", 0)
        )
