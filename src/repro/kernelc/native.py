"""Native chain compilation: one C translation unit per loop chain.

The third kernelc emitter.  :mod:`repro.kernelc.scalar` specializes the
dispatch loop, :mod:`repro.kernelc.vector` derives batched NumPy
kernels; this module lowers a whole *traced loop chain* — every
:class:`~repro.core.chain.BoundLoop` of a
:class:`~repro.core.chain.CompiledChain` — into a single C translation
unit: per-element gathers, the scalar kernel body, and the scatters
fused into one native loop per chain member, with AoS/SoA index
arithmetic, map arities, set extents and closure constants baked into
the source text.  The TU is compiled once with the system C compiler
and loaded through cffi's ABI mode; runtime data arrives per run as a
flat ``void **`` pointer table, so the shared object itself is
position- and process-independent and can be cached on disk.

Determinism rationale
---------------------
The emitted C replays the *sequential* backend operation for
operation: elements execute in ascending order, every floating-point
expression maps to the exact machine operation NumPy's scalar path
performs (``+ - * /`` are IEEE double ops, ``np.sqrt`` is the
correctly-rounded ``sqrt``, ``np.minimum``/``np.maximum`` keep NumPy's
NaN/ordering rule, ``**`` is libm ``pow`` — numpy's scalar pow), and
the TU is compiled with ``-ffp-contract=off -fno-fast-math`` so the
compiler can neither fuse multiply-adds nor reassociate.  Native
results are therefore *bitwise identical* to sequential eager
execution — the acceptance bar the differential fuzz suite
(``tests/test_kernelc_fuzz.py``) locks down.

Cache hierarchy
---------------
Source text is content-hashed (:func:`source_key`); compiled shared
objects live in memory per process and on disk under
``$REPRO_NATIVE_CACHE`` (default ``~/.cache/repro_native``) keyed by
that hash, so warm processes skip the compiler entirely.  This is the
sixth cache kind surfaced by :meth:`repro.core.runtime.Runtime.stats`:
loop → plan → chain → tiled → kernelc → native.

Anything outside the translatable subset raises
:class:`NativeUnsupported`; the native backend then falls back (see
``backends/native.py``).
"""

from __future__ import annotations

import ast
import builtins
import hashlib
import inspect
import os
import re
import shutil
import subprocess
import tempfile
import textwrap
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.access import Access
from ..simd import intrinsics as _intrinsics
from .cache import kernel_ir
from .ir import (
    SAssign,
    SAug,
    SFor,
    SIf,
    UnvectorizableKernel,
    function_namespace,
    is_lane_safe_helper,
)


class NativeUnsupported(Exception):
    """Kernel or chain outside the native emitter's C-translatable subset."""


# ----------------------------------------------------------------------
# C type / literal mapping
# ----------------------------------------------------------------------
_CTYPES = {
    np.dtype(np.float64): "double",
    np.dtype(np.float32): "float",
    np.dtype(np.int64): "long long",
}

_C_KEYWORDS = frozenset(
    """auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    _Bool""".split()
)
#: Identifiers the emitter itself generates inside a loop body.
_EMITTER_NAMES = frozenset({"e", "l", "r", "lo", "hi", "P", "NAN", "INFINITY"})
_GENERATED_RE = re.compile(r"^(?:[dmgv]\d+|i\d+|kc_\w+|h\d+_\w*)$")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _c_double(v) -> str:
    """An exact C literal for a Python/NumPy float (hex when needed)."""
    f = float(v)
    if f != f:
        return "NAN"
    if f == float("inf"):
        return "INFINITY"
    if f == float("-inf"):
        return "(-INFINITY)"
    if f == int(f) and abs(f) < 1e16:
        return repr(f)  # "3.0" — exact and readable
    return float.hex(f)  # C99 hex float literal, exact round-trip


def _c_float(v) -> str:
    """An exact ``float`` C literal: the value NumPy's weak-scalar
    promotion would use when this constant meets a float32 operand.
    The ``f`` suffix is load-bearing — without it the literal is a
    ``double`` and would silently promote the whole expression."""
    f = float(np.float32(v))
    if f != f:
        return "NAN"
    if f == float("inf"):
        return "INFINITY"
    if f == float("-inf"):
        return "(-INFINITY)"
    if f == int(f) and abs(f) < 1e7:
        return repr(f) + "f"
    return float.hex(f) + "f"


def _cident(name: str, taken: set) -> str:
    base = name if _IDENT_RE.match(name) else "loc"
    if base in _C_KEYWORDS or base in _EMITTER_NAMES or _GENERATED_RE.match(base):
        base += "_l"
    while base in taken:
        base += "_"
    taken.add(base)
    return base


# ----------------------------------------------------------------------
# Pointer-table construction
# ----------------------------------------------------------------------
class _PointerTable:
    """Deterministic slot assignment for every runtime buffer a chain
    touches: Dat physical storage, Map index tables, Global values.
    Slots are assigned in first-encounter order over loops × args, so
    the same chain always produces the same table (and source text)."""

    def __init__(self) -> None:
        self.recipe: List[Tuple[int, int, str]] = []  # (loop, argpos, kind)
        self.comments: List[str] = []
        self._slots: Dict[int, int] = {}

    def slot(self, array: np.ndarray, loop_j: int, argpos: int, kind: str,
             comment: str) -> int:
        key = id(array)
        found = self._slots.get(key)
        if found is not None:
            return found
        idx = len(self.recipe)
        self._slots[key] = idx
        self.recipe.append((loop_j, argpos, kind))
        self.comments.append(comment)
        return idx


@dataclass
class _ArgSpec:
    """Everything the emitter bakes into the source for one argument."""

    kind: str  # direct | indirect | vector | gread | gred
    slot: int
    map_slot: Optional[int]
    access: Access
    dim: int
    arity: int
    map_index: int
    layout: str
    extent: int
    ctype: str
    name: str


def _arg_spec(arg, loop_j: int, argpos: int, ptab: _PointerTable) -> _ArgSpec:
    if arg.is_global:
        g = arg.dat
        gtype = _CTYPES.get(np.dtype(g._data.dtype))
        if gtype not in ("double", "float"):
            raise NativeUnsupported(
                f"global {g.name}: only floating globals are nativizable"
            )
        slot = ptab.slot(g._data, loop_j, argpos, "gbl", f"global {g.name}")
        kind = "gred" if arg.access.is_reduction else "gread"
        return _ArgSpec(kind, slot, None, arg.access, g.dim, 0, -1,
                        "aos", g.dim, gtype, g.name)
    dat = arg.dat
    ctype = _CTYPES.get(dat.dtype)
    if ctype is None:
        raise NativeUnsupported(
            f"dat {dat.name}: dtype {dat.dtype} has no native mapping"
        )
    storage = dat._storage
    extent = storage.shape[1] if dat.layout == "soa" else storage.shape[0]
    slot = ptab.slot(
        storage, loop_j, argpos, "dat",
        f"dat {dat.name}: dim {dat.dim}, {dat.layout}, extent {extent}",
    )
    if arg.is_direct:
        return _ArgSpec("direct", slot, None, arg.access, dat.dim, 0, -1,
                        dat.layout, extent, ctype, dat.name)
    map_slot = ptab.slot(
        arg.map.values, loop_j, argpos, "map",
        f"map {arg.map.name}: arity {arg.map.arity}",
    )
    if arg.is_vector:
        return _ArgSpec("vector", slot, map_slot, arg.access, dat.dim,
                        arg.map.arity, -1, dat.layout, extent, ctype, dat.name)
    return _ArgSpec("indirect", slot, map_slot, arg.access, dat.dim,
                    arg.map.arity, int(arg.index), dat.layout, extent, ctype,
                    dat.name)


# ----------------------------------------------------------------------
# Name-resolution scope for the body translator
# ----------------------------------------------------------------------
@dataclass
class _Scope:
    ns: Dict[str, object]
    rename: Dict[str, str] = field(default_factory=dict)
    aliases: Dict[str, tuple] = field(default_factory=dict)
    loops: Dict[str, int] = field(default_factory=dict)
    params: Dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Per-loop emitter
# ----------------------------------------------------------------------
class _LoopEmitter:
    """Translates one bound loop (kernel + concrete args) to C."""

    def __init__(self, j: int, bl, ptab: _PointerTable) -> None:
        self.j = j
        self.bl = bl
        try:
            self.ir = kernel_ir(bl.kernel)
        except UnvectorizableKernel as exc:
            raise NativeUnsupported(
                f"kernel {bl.kernel.name}: {exc}"
            ) from exc
        if len(self.ir.params) != len(bl.args):
            raise NativeUnsupported(
                f"kernel {bl.kernel.name}: {len(self.ir.params)} params vs "
                f"{len(bl.args)} loop arguments"
            )
        self.specs = [
            _arg_spec(arg, j, i, ptab) for i, arg in enumerate(bl.args)
        ]
        #: (argpos, slot) for every reduction-global argument.
        self.red_args = [
            (i, s.slot) for i, s in enumerate(self.specs) if s.kind == "gred"
        ]
        # One uniform floating compute type per loop.  NumPy's weak
        # scalars keep a float32 kernel in float32 end to end; a loop
        # mixing float32 and float64 arguments would promote mid-kernel
        # in ways C can't mirror cheaply — punt to the fallback.
        ftypes = {s.ctype for s in self.specs if s.ctype in ("double", "float")}
        if len(ftypes) > 1:
            raise NativeUnsupported(
                f"kernel {bl.kernel.name}: mixed float32/float64 arguments"
            )
        self.ft = ftypes.pop() if ftypes else "double"
        self.sfx = "f" if self.ft == "float" else ""
        self._taken: set = set()
        self._hc = 0
        self._tc = 0

    def _lit(self, v) -> str:
        return _c_float(v) if self.ft == "float" else _c_double(v)

    def _lit_np(self, v) -> str:
        """Literal for a NumPy-sourced constant.  A float64 *NumPy*
        scalar is strong under NEP 50 — meeting one would promote a
        float32 kernel to double mid-expression, which the uniform-type
        C body can't mirror."""
        if self.ft == "float" and isinstance(v, np.floating) \
                and v.dtype == np.float64:
            raise NativeUnsupported(
                "float64 numpy constant inside a float32 kernel"
            )
        return self._lit(v)

    # -- small helpers --------------------------------------------------
    def _buf(self, spec: _ArgSpec) -> str:
        if spec.kind in ("gread", "gred"):
            return f"g{spec.slot}" if spec.kind == "gread" else self._red(spec)
        return f"d{spec.slot}"

    def _red(self, spec: _ArgSpec) -> str:
        return f"kc_red{self.j}_{spec.slot}"

    def _addr(self, spec: _ArgSpec, row: str, comp: int) -> str:
        if spec.layout == "soa":
            off = comp * spec.extent
            idx = f"{row} + {off}" if off else row
        elif spec.dim == 1:
            idx = row
        else:
            idx = f"{row} * {spec.dim} + {comp}"
        return f"d{spec.slot}[{idx}]"

    # -- constant-index evaluation --------------------------------------
    def _const_int(self, node, scope: _Scope) -> int:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in scope.loops:
                return scope.loops[node.id]
            v = scope.ns.get(node.id)
            if isinstance(v, (int, np.integer)) and not isinstance(v, bool):
                return int(v)
            raise NativeUnsupported(f"non-constant index name {node.id!r}")
        if isinstance(node, ast.BinOp):
            lv = self._const_int(node.left, scope)
            rv = self._const_int(node.right, scope)
            if isinstance(node.op, ast.Add):
                return lv + rv
            if isinstance(node.op, ast.Sub):
                return lv - rv
            if isinstance(node.op, ast.Mult):
                return lv * rv
            if isinstance(node.op, ast.Mod):
                return lv % rv
            if isinstance(node.op, ast.FloorDiv):
                return lv // rv
            raise NativeUnsupported("unsupported index arithmetic")
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -self._const_int(node.operand, scope)
        raise NativeUnsupported(
            f"index expression {ast.dump(node)[:60]} is not compile-time "
            f"constant"
        )

    # -- subscript resolution -------------------------------------------
    def _resolve_access(self, node, scope: _Scope):
        """Resolve a (possibly chained) subscript.

        Returns one of
          ("lval", argpos, row_idx_or_None, comp)  — full param access
          ("alias", argpos, (idx,))                — partial vector-arg row
          ("elem", python_scalar)                  — closure array element
          ("nsarr", ndarray)                       — partial closure array
        """
        idx_nodes = []
        base = node
        while isinstance(base, ast.Subscript):
            idx_nodes.append(base.slice)
            base = base.value
        idx_nodes.reverse()
        if not isinstance(base, ast.Name):
            raise NativeUnsupported("subscript of a non-name expression")
        name = base.id
        idxs = [self._const_int(i, scope) for i in idx_nodes]

        pre: Tuple[int, ...] = ()
        if name in scope.aliases:
            target = scope.aliases[name]
            if target[0] == "arg":
                _, argpos, pre = target
                return self._param_access(argpos, list(pre) + idxs)
            _, arr = target
            return self._ns_access(arr, idxs)
        if name in scope.params:
            return self._param_access(scope.params[name], idxs)
        v = scope.ns.get(name)
        if isinstance(v, np.ndarray):
            return self._ns_access(v, idxs)
        raise NativeUnsupported(f"subscript of unsupported name {name!r}")

    def _param_access(self, argpos: int, idxs: List[int]):
        spec = self.specs[argpos]
        needed = 2 if spec.kind == "vector" else 1
        if len(idxs) < needed:
            return ("alias", argpos, tuple(idxs))
        if len(idxs) > needed:
            raise NativeUnsupported(
                f"param {self.ir.params[argpos]}: too many subscripts"
            )
        if spec.kind == "vector":
            slot_i, comp = idxs
            if slot_i < 0:
                slot_i += spec.arity
            if comp < 0:
                comp += spec.dim
            if not (0 <= slot_i < spec.arity and 0 <= comp < spec.dim):
                raise NativeUnsupported("vector-arg subscript out of range")
            return ("lval", argpos, slot_i, comp)
        comp = idxs[0]
        if comp < 0:
            comp += spec.dim
        if not 0 <= comp < spec.dim:
            raise NativeUnsupported("component subscript out of range")
        return ("lval", argpos, None, comp)

    def _ns_access(self, arr: np.ndarray, idxs: List[int]):
        v = arr
        try:
            for i in idxs:
                v = v[i]
        except IndexError as exc:
            raise NativeUnsupported(f"constant-array index error: {exc}")
        if np.ndim(v) == 0:
            return ("elem", v)
        return ("nsarr", v)

    def _lvalue(self, argpos: int, slot_i, comp: int) -> str:
        spec = self.specs[argpos]
        if spec.kind == "direct":
            return self._addr(spec, "e", comp)
        if spec.kind == "indirect":
            return self._addr(spec, f"i{argpos}", comp)
        if spec.kind == "vector":
            return f"v{argpos}[{slot_i * spec.dim + comp}]"
        if spec.kind == "gread":
            return f"g{spec.slot}[{comp}]"
        return f"{self._red(spec)}[{comp}]"  # gred

    # -- expressions ----------------------------------------------------
    def _cx(self, node, scope: _Scope) -> str:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return "1.0" if node.value else "0.0"
            if isinstance(node.value, (int, float)):
                return self._lit(node.value)
            raise NativeUnsupported(f"constant {node.value!r}")
        if isinstance(node, ast.Name):
            name = node.id
            if name in scope.loops:
                return self._lit(scope.loops[name])
            if name in scope.aliases:
                raise NativeUnsupported(
                    f"array value {name!r} used in scalar position"
                )
            if name in scope.rename:
                return scope.rename[name]
            if name in scope.params:
                raise NativeUnsupported(
                    f"whole parameter {name!r} used as a value"
                )
            v = scope.ns.get(name)
            if isinstance(v, (bool, int, float, np.floating, np.integer)):
                return self._lit_np(v)
            raise NativeUnsupported(f"unresolvable name {name!r}")
        if isinstance(node, ast.Subscript):
            r = self._resolve_access(node, scope)
            if r[0] == "lval":
                return self._lvalue(r[1], r[2], r[3])
            if r[0] == "elem":
                return self._lit_np(r[1])
            raise NativeUnsupported("array-valued subscript in scalar position")
        if isinstance(node, ast.BinOp):
            folded = self._try_const(node, scope)
            if folded is not None:
                return self._lit(folded)
            if isinstance(node.op, ast.Pow):
                return self._pow(node.left, node.right, scope)
            op = {ast.Add: "+", ast.Sub: "-", ast.Mult: "*",
                  ast.Div: "/"}.get(type(node.op))
            if op is None:
                raise NativeUnsupported(
                    f"operator {type(node.op).__name__} in value position"
                )
            return f"({self._cx(node.left, scope)} {op} " \
                   f"{self._cx(node.right, scope)})"
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return f"(-{self._cx(node.operand, scope)})"
            return self._cx(node.operand, scope)
        if isinstance(node, ast.Compare):
            return (f"({self._cond(node, scope)} ? "
                    f"{self._lit(1.0)} : {self._lit(0.0)})")
        if isinstance(node, ast.IfExp):
            return (
                f"({self._cond(node.test, scope)} ? "
                f"{self._cx(node.body, scope)} : "
                f"{self._cx(node.orelse, scope)})"
            )
        if isinstance(node, ast.Call):
            return self._call(node, scope)
        raise NativeUnsupported(
            f"expression {type(node).__name__} has no native lowering"
        )

    def _try_const(self, node, scope: _Scope):
        """Evaluate a pure-Python constant subtree the way the scalar
        kernel itself would — in Python (double) arithmetic — so that
        e.g. ``0.5 * g`` folds to one literal *before* it is narrowed
        to the loop's float type, exactly matching NumPy's weak-scalar
        promotion.  Returns ``None`` when any leaf is runtime data or a
        (strong) NumPy scalar."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and \
                    not isinstance(node.value, bool):
                return node.value
            return None
        if isinstance(node, ast.Name):
            if node.id in scope.loops:
                return scope.loops[node.id]
            if node.id in scope.rename or node.id in scope.aliases \
                    or node.id in scope.params:
                return None
            v = scope.ns.get(node.id)
            if type(v) in (int, float):
                return v
            return None
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            v = self._try_const(node.operand, scope)
            return None if v is None else -v
        if isinstance(node, ast.BinOp):
            lv = self._try_const(node.left, scope)
            rv = self._try_const(node.right, scope)
            if lv is None or rv is None:
                return None
            try:
                if isinstance(node.op, ast.Add):
                    return lv + rv
                if isinstance(node.op, ast.Sub):
                    return lv - rv
                if isinstance(node.op, ast.Mult):
                    return lv * rv
                if isinstance(node.op, ast.Div):
                    return lv / rv
                if isinstance(node.op, ast.Pow):
                    return lv ** rv
            except (ZeroDivisionError, OverflowError):
                return None
        return None

    def _cond(self, node, scope: _Scope) -> str:
        if isinstance(node, ast.Compare):
            cop = {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
                   ast.Eq: "==", ast.NotEq: "!="}.get(type(node.ops[0]))
            if cop is None or len(node.ops) != 1:
                raise NativeUnsupported("unsupported comparison")
            return (
                f"({self._cx(node.left, scope)} {cop} "
                f"{self._cx(node.comparators[0], scope)})"
            )
        return f"({self._cx(node, scope)} != 0.0)"

    def _pow(self, base, expo, scope: _Scope) -> str:
        b = self._cx(base, scope)
        v: Optional[float] = None
        if isinstance(expo, ast.Constant) and isinstance(
                expo.value, (int, float)) and not isinstance(expo.value, bool):
            v = float(expo.value)
        elif isinstance(expo, ast.Name):
            nv = scope.ns.get(expo.id)
            if isinstance(nv, (int, float, np.floating, np.integer)):
                v = float(nv)
        elif isinstance(expo, ast.UnaryOp) and isinstance(expo.op, ast.USub) \
                and isinstance(expo.operand, ast.Constant):
            v = -float(expo.operand.value)
        # numpy *scalar* ``**`` (the interpreter oracle) is plain libm
        # pow()/powf() — unlike array ``**``, whose small-exponent fast
        # paths (np.square, sqrt, reciprocal) round differently by one
        # ulp on some inputs.  Only the exponents where pow() is exact
        # by IEEE (x**0 == 1, x**1 == x) may fold.
        if v is not None:
            if v == 0.0:
                return self._lit(1.0)
            if v == 1.0:
                return b
            return f"pow{self.sfx}({b}, {self._lit(v)})"
        return f"kc_pow{self.sfx}({b}, {self._cx(expo, scope)})"

    def _callee(self, func, scope: _Scope):
        if isinstance(func, ast.Name):
            if func.id in scope.ns:
                return scope.ns[func.id]
            return getattr(builtins, func.id, None)
        if isinstance(func, ast.Attribute):
            base = self._callee(func.value, scope)
            if base is None:
                return None
            return getattr(base, func.attr, None)
        return None

    def _call(self, node: ast.Call, scope: _Scope) -> str:
        fn = self._callee(node.func, scope)
        if fn is None or node.keywords:
            raise NativeUnsupported("unresolvable or keyword call")
        a = [self._cx(arg, scope) for arg in node.args[1:]]

        def arg0() -> str:
            return self._cx(node.args[0], scope)

        if fn in (np.sqrt, _intrinsics.vsqrt):
            return f"sqrt{self.sfx}({arg0()})"
        if fn in (np.abs, np.absolute, builtins.abs, _intrinsics.vabs):
            return f"fabs{self.sfx}({arg0()})"
        if fn in (np.minimum, _intrinsics.vmin):
            return f"kc_fmin{self.sfx}({arg0()}, {a[0]})"
        if fn in (np.maximum, _intrinsics.vmax):
            return f"kc_fmax{self.sfx}({arg0()}, {a[0]})"
        if fn is builtins.min and len(node.args) == 2:
            return f"kc_pymin{self.sfx}({arg0()}, {a[0]})"
        if fn is builtins.max and len(node.args) == 2:
            return f"kc_pymax{self.sfx}({arg0()}, {a[0]})"
        if fn is _intrinsics.select:
            return (
                f"({self._cond(node.args[0], scope)} ? {a[0]} : {a[1]})"
            )
        if fn is _intrinsics.vfma:
            return f"(({arg0()} * {a[0]}) + {a[1]})"
        if fn is _intrinsics.vrecip:
            return f"({self._lit(1.0)} / {arg0()})"
        raise NativeUnsupported(
            f"call to {getattr(fn, '__name__', fn)!r} in expression position"
        )

    # -- helper inlining ------------------------------------------------
    def _inline_helper(self, call: ast.Call, targets: List[str],
                       scope: _Scope, out: List[str], ind: str) -> None:
        fn = self._callee(call.func, scope)
        n = self._hc
        self._hc += 1
        pf = f"h{n}_"
        tree = ast.parse(textwrap.dedent(inspect.getsource(fn))).body[0]
        params = [p.arg for p in tree.args.args]
        if len(params) != len(call.args):
            raise NativeUnsupported(
                f"helper {fn.__name__}: argument count mismatch"
            )
        hscope = _Scope(ns=function_namespace(fn))
        out.append(f"{ind}/* inlined {fn.__name__}() */")
        for p, anode in zip(params, call.args):
            cn = pf + p
            out.append(f"{ind}const {self.ft} {cn} = {self._cx(anode, scope)};")
            hscope.rename[p] = cn
        rets: Optional[List[ast.expr]] = None
        for st in tree.body:
            if isinstance(st, ast.Expr) and isinstance(st.value, ast.Constant):
                continue  # docstring
            if isinstance(st, ast.Return):
                if st.value is None:
                    raise NativeUnsupported(
                        f"helper {fn.__name__}: bare return"
                    )
                rets = (list(st.value.elts)
                        if isinstance(st.value, ast.Tuple) else [st.value])
                break
            if not isinstance(st, ast.Assign):
                raise NativeUnsupported(
                    f"helper {fn.__name__}: non-assign statement"
                )
            self._helper_assign(st, pf, hscope, scope, out, ind)
        if rets is None:
            raise NativeUnsupported(f"helper {fn.__name__}: missing return")
        if len(rets) != len(targets):
            raise NativeUnsupported(
                f"helper {fn.__name__}: returns {len(rets)} values into "
                f"{len(targets)} targets"
            )
        tmps = []
        for i, rv in enumerate(rets):
            tn = f"{pf}r{i}"
            out.append(f"{ind}const {self.ft} {tn} = {self._cx(rv, hscope)};")
            tmps.append(tn)
        for tgt, tn in zip(targets, tmps):
            out.append(f"{ind}{tgt} = {tn};")

    def _helper_assign(self, st: ast.Assign, pf: str, hscope: _Scope,
                       kscope: _Scope, out: List[str], ind: str) -> None:
        tgt = st.targets[0]
        if len(st.targets) != 1:
            raise NativeUnsupported("helper: chained assignment")
        names = ([t.id for t in tgt.elts] if isinstance(tgt, ast.Tuple)
                 else [tgt.id] if isinstance(tgt, ast.Name) else None)
        if names is None:
            raise NativeUnsupported("helper: non-name assignment target")

        def bind(name: str) -> str:
            if name in hscope.rename:
                return hscope.rename[name]
            cn = pf + name
            hscope.rename[name] = cn
            out.append(f"{ind}{self.ft} {cn};")
            return cn

        if isinstance(st.value, ast.Call) and self._is_helper_in(
                st.value, hscope):
            self._inline_helper(st.value, [bind(n) for n in names],
                                hscope, out, ind)
            return
        if isinstance(tgt, ast.Tuple):
            if not isinstance(st.value, ast.Tuple) or \
                    len(st.value.elts) != len(names):
                raise NativeUnsupported("helper: unsupported tuple assign")
            tmps = []
            for i, v in enumerate(st.value.elts):
                tn = f"{pf}t{i}_{self._tc}"
                self._tc += 1
                out.append(f"{ind}const {self.ft} {tn} = {self._cx(v, hscope)};")
                tmps.append(tn)
            for name, tn in zip(names, tmps):
                out.append(f"{ind}{bind(name)} = {tn};")
            return
        out.append(f"{ind}{bind(names[0])} = {self._cx(st.value, hscope)};")

    def _is_helper_in(self, node, scope: _Scope) -> bool:
        if not isinstance(node, ast.Call):
            return False
        fn = self._callee(node.func, scope)
        if fn is None or fn in INTRINSICS_AND_MATH or not inspect.isfunction(fn):
            return False
        return is_lane_safe_helper(fn)

    # -- statements -----------------------------------------------------
    def _target_code(self, tgt, scope: _Scope) -> str:
        if isinstance(tgt, ast.Name):
            scope.aliases.pop(tgt.id, None)
            cn = scope.rename.get(tgt.id)
            if cn is None:
                raise NativeUnsupported(f"undeclared target {tgt.id!r}")
            return cn
        if isinstance(tgt, ast.Subscript):
            r = self._resolve_access(tgt, scope)
            if r[0] != "lval":
                raise NativeUnsupported("partial-array store target")
            return self._lvalue(r[1], r[2], r[3])
        raise NativeUnsupported(
            f"assignment target {type(tgt).__name__} unsupported"
        )

    def _stmt(self, st, scope: _Scope, out: List[str], ind: str) -> None:
        if isinstance(st, SAssign):
            self._assign(st, scope, out, ind)
        elif isinstance(st, SAug):
            op = {ast.Add: "+=", ast.Sub: "-=", ast.Mult: "*=",
                  ast.Div: "/="}.get(type(st.op))
            if op is None:
                raise NativeUnsupported("unsupported augmented assignment")
            rhs = self._cx(st.value, scope)
            out.append(f"{ind}{self._target_code(st.target, scope)} {op} {rhs};")
        elif isinstance(st, SFor):
            if st.var in scope.loops:
                raise NativeUnsupported(f"loop variable {st.var!r} reused")
            span = range(st.start, st.stop, st.step)
            if len(span) > 4096:
                raise NativeUnsupported("dim loop too large to unroll")
            out.append(f"{ind}/* for {st.var} in "
                       f"range({st.start}, {st.stop}, {st.step}) */")
            for v in span:
                scope.loops[st.var] = v
                for inner in st.body:
                    self._stmt(inner, scope, out, ind)
            scope.loops.pop(st.var, None)
        elif isinstance(st, SIf):
            before = dict(scope.aliases)
            out.append(f"{ind}if {self._cond(st.test, scope)} {{")
            for inner in st.body:
                self._stmt(inner, scope, out, ind + "    ")
            if scope.aliases != before:
                raise NativeUnsupported("alias binding inside a branch")
            if st.orelse:
                out.append(f"{ind}}} else {{")
                for inner in st.orelse:
                    self._stmt(inner, scope, out, ind + "    ")
                if scope.aliases != before:
                    raise NativeUnsupported("alias binding inside a branch")
            out.append(f"{ind}}}")
        else:
            raise NativeUnsupported(
                f"statement {type(st).__name__} has no native lowering"
            )

    def _assign(self, st: SAssign, scope: _Scope, out: List[str],
                ind: str) -> None:
        if len(st.targets) != 1:
            tn = f"t{self._tc}"
            self._tc += 1
            out.append(f"{ind}const {self.ft} {tn} = {self._cx(st.value, scope)};")
            for tgt in st.targets:
                out.append(f"{ind}{self._target_code(tgt, scope)} = {tn};")
            return
        tgt = st.targets[0]
        # Array aliasing: ``x1 = x[k]`` binds a row, emits nothing.
        if isinstance(tgt, ast.Name) and isinstance(st.value, ast.Subscript):
            r = self._resolve_access(st.value, scope)
            if r[0] == "alias":
                scope.aliases[tgt.id] = ("arg", r[1], r[2])
                return
            if r[0] == "nsarr":
                scope.aliases[tgt.id] = ("ns", r[1])
                return
        # Helper call: inline at statement level.
        if isinstance(st.value, ast.Call) and self._is_helper_in(
                st.value, scope):
            targets = ([self._target_code(t, scope) for t in tgt.elts]
                       if isinstance(tgt, ast.Tuple)
                       else [self._target_code(tgt, scope)])
            self._inline_helper(st.value, targets, scope, out, ind)
            return
        if isinstance(tgt, ast.Tuple):
            if not isinstance(st.value, ast.Tuple) or \
                    len(st.value.elts) != len(tgt.elts):
                raise NativeUnsupported("tuple assignment shape mismatch")
            tmps = []
            for v in st.value.elts:
                # RHS evaluated before any target is written (swap-safe).
                if isinstance(v, ast.Subscript):
                    r = self._resolve_access(v, scope)
                    if r[0] in ("alias", "nsarr"):
                        tmps.append(("alias", r))
                        continue
                tn = f"t{self._tc}"
                self._tc += 1
                out.append(f"{ind}const {self.ft} {tn} = {self._cx(v, scope)};")
                tmps.append(("tmp", tn))
            for t, (kind, val) in zip(tgt.elts, tmps):
                if kind == "alias":
                    if not isinstance(t, ast.Name):
                        raise NativeUnsupported("array alias into subscript")
                    if val[0] == "alias":
                        scope.aliases[t.id] = ("arg", val[1], val[2])
                    else:
                        scope.aliases[t.id] = ("ns", val[1])
                else:
                    out.append(f"{ind}{self._target_code(t, scope)} = {val};")
            return
        out.append(
            f"{ind}{self._target_code(tgt, scope)} = {self._cx(st.value, scope)};"
        )

    # -- locals pre-pass -------------------------------------------------
    def _collect_locals(self) -> List[str]:
        """Ordered scalar local names (aliases and loop vars excluded)."""
        names: List[str] = []
        depth: Dict[str, int] = {}  # alias name -> remaining subscripts

        def need(name: str) -> Optional[int]:
            """How many subscripts until ``name`` yields a scalar."""
            if name in depth:
                return depth[name]
            if name in self._kscope.params:
                spec = self.specs[self._kscope.params[name]]
                return 2 if spec.kind == "vector" else 1
            v = self.ir.namespace.get(name)
            if isinstance(v, np.ndarray):
                return v.ndim
            return None

        def sub_depth(node) -> Tuple[Optional[str], int]:
            levels = 0
            while isinstance(node, ast.Subscript):
                levels += 1
                node = node.value
            if isinstance(node, ast.Name):
                return node.id, levels
            return None, levels

        def add(name: str) -> None:
            depth.pop(name, None)
            if name not in names:
                names.append(name)

        def scan_assign(tgt, value) -> None:
            if isinstance(tgt, ast.Tuple):
                elts_v = (value.elts if isinstance(value, ast.Tuple)
                          else [None] * len(tgt.elts))
                for t, v in zip(tgt.elts, elts_v):
                    scan_assign(t, v)
                return
            if not isinstance(tgt, ast.Name):
                return
            if isinstance(value, ast.Subscript):
                base, levels = sub_depth(value)
                needed = need(base) if base else None
                if needed is not None and levels < needed:
                    depth[tgt.id] = needed - levels
                    return
            add(tgt.id)

        def walk(stmts) -> None:
            for st in stmts:
                if isinstance(st, SAssign):
                    for tgt in st.targets:
                        scan_assign(tgt, st.value)
                elif isinstance(st, SFor):
                    walk(st.body)
                elif isinstance(st, SIf):
                    walk(st.body)
                    walk(st.orelse)
        walk(self.ir.body)
        return names

    # -- whole-loop emission ---------------------------------------------
    def emit(self) -> List[str]:
        bl = self.bl
        self._kscope = _Scope(
            ns=self.ir.namespace,
            params={p: i for i, p in enumerate(self.ir.params)},
        )
        scope = self._kscope
        out: List[str] = []
        out.append(
            f"/* ---- loop {self.j}: {bl.kernel.name} over "
            f"[{bl.start}, {bl.n}) ---- */"
        )
        for argpos, slot in self.red_args:
            spec = self.specs[argpos]
            out.append(f"static {self.ft} {self._red(spec)}[{spec.dim}];")
        out.append(f"static void kc_loop{self.j}(void **P, i64 lo, i64 hi)")
        out.append("{")

        # One typed pointer local per distinct pointer-table slot.
        writes: Dict[int, bool] = {}
        slot_meta: Dict[int, Tuple[str, str, str]] = {}
        for spec in self.specs:
            if spec.kind in ("direct", "indirect", "vector"):
                writes[spec.slot] = writes.get(spec.slot, False) or \
                    spec.access.writes
                slot_meta[spec.slot] = ("d", spec.ctype, spec.name)
                if spec.map_slot is not None:
                    slot_meta[spec.map_slot] = ("m", "long long", spec.name)
            elif spec.kind == "gread":
                slot_meta[spec.slot] = ("g", spec.ctype, spec.name)
        for slot in sorted(slot_meta):
            pfx, ctype, name = slot_meta[slot]
            if pfx == "m":
                out.append(
                    f"    const long long *m{slot} = "
                    f"(const long long *)P[{slot}];"
                )
            elif pfx == "g":
                out.append(
                    f"    const {ctype} *g{slot} = (const {ctype} *)P[{slot}];"
                )
            else:
                const = "" if writes.get(slot) else "const "
                out.append(
                    f"    {const}{ctype} *d{slot} = "
                    f"({const}{ctype} *)P[{slot}];"
                )
        out.append("    for (i64 e = lo; e < hi; ++e) {")
        body: List[str] = []
        ind = "        "

        # Indirect row indices.
        for k, spec in enumerate(self.specs):
            if spec.kind == "indirect":
                body.append(
                    f"{ind}const i64 i{k} = "
                    f"m{spec.map_slot}[e * {spec.arity} + {spec.map_index}];"
                )
        # Vector-argument gathers (copies, exactly like scalar_views).
        for k, spec in enumerate(self.specs):
            if spec.kind != "vector":
                continue
            size = spec.arity * spec.dim
            if spec.access is Access.INC:
                body.append(f"{ind}{self.ft} v{k}[{size}] = {{0.0{self.sfx}}};")
                continue
            body.append(f"{ind}{self.ft} v{k}[{size}];")
            body.append(f"{ind}for (int l = 0; l < {spec.arity}; ++l) {{")
            body.append(
                f"{ind}    const i64 r = m{spec.map_slot}"
                f"[e * {spec.arity} + l];"
            )
            for c in range(spec.dim):
                body.append(
                    f"{ind}    v{k}[l * {spec.dim} + {c}] = "
                    f"{self._addr(spec, 'r', c)};"
                )
            body.append(f"{ind}}}")

        # Scalar locals (pre-declared: branch assignments stay visible).
        for name in self._collect_locals():
            scope.rename[name] = _cident(name, self._taken)
        if scope.rename:
            decls = " ".join(
                f"{self.ft} {scope.rename[n]};" for n in scope.rename
            )
            body.append(f"{ind}{decls}")

        for st in self.ir.body:
            self._stmt(st, scope, body, ind)

        # Writebacks in argument order (run_scalar_element's order).
        for k, spec in enumerate(self.specs):
            if spec.kind != "vector" or not spec.access.writes:
                continue
            op = "+=" if spec.access is Access.INC else "="
            body.append(f"{ind}for (int l = 0; l < {spec.arity}; ++l) {{")
            body.append(
                f"{ind}    const i64 r = m{spec.map_slot}"
                f"[e * {spec.arity} + l];"
            )
            for c in range(spec.dim):
                body.append(
                    f"{ind}    {self._addr(spec, 'r', c)} {op} "
                    f"v{k}[l * {spec.dim} + {c}];"
                )
            body.append(f"{ind}}}")
        out.extend(body)
        out.append("    }")
        out.append("}")

        # Reduction plumbing.
        if self.red_args:
            init_lines, fold_lines, part_lines = [], [], []
            for argpos, slot in self.red_args:
                spec = self.specs[argpos]
                red = self._red(spec)
                acc = self.bl.args[argpos].access
                maxlit = "FLT_MAX" if self.ft == "float" else "DBL_MAX"
                ident = {"INC": self._lit(0.0), "MIN": maxlit,
                         "MAX": f"(-{maxlit})"}[acc.name]
                fmin, fmax = f"kc_fmin{self.sfx}", f"kc_fmax{self.sfx}"
                comb = {
                    "INC": "g[{c}] += {r}[{c}];",
                    "MIN": "g[{c}] = %s(g[{c}], {r}[{c}]);" % fmin,
                    "MAX": "g[{c}] = %s(g[{c}], {r}[{c}]);" % fmax,
                }[acc.name]
                for c in range(spec.dim):
                    init_lines.append(f"    {red}[{c}] = {ident};")
                    fold_lines.append(
                        "    { %s *g = (%s *)P[%d]; %s }"
                        % (self.ft, self.ft, slot, comb.format(c=c, r=red))
                    )
                    part_lines.append(
                        f"    (({self.ft} *)P[{slot}])[{c}] = {red}[{c}];"
                    )
            out.append(f"static void kc_loop{self.j}_init(void)")
            out.append("{")
            out.extend(init_lines)
            out.append("}")
            out.append(f"static void kc_loop{self.j}_fold(void **P)")
            out.append("{")
            out.extend(fold_lines)
            out.append("}")
            out.append(f"static void kc_loop{self.j}_partial(void **P)")
            out.append("{")
            out.extend(part_lines)
            out.append("}")
        out.append("")
        return out


#: Call targets that are *not* inlinable helpers (resolved specially).
INTRINSICS_AND_MATH = frozenset(
    {np.sqrt, np.abs, np.absolute, np.minimum, np.maximum,
     builtins.abs, builtins.min, builtins.max,
     _intrinsics.select, _intrinsics.vmin, _intrinsics.vmax,
     _intrinsics.vabs, _intrinsics.vsqrt, _intrinsics.vfma,
     _intrinsics.vrecip}
)


_PREAMBLE = """\
#include <math.h>
#include <float.h>

typedef long long i64;

/* np.minimum / np.maximum semantics (NaN-propagating, first-wins). */
static inline double kc_fmin(double a, double b)
{ return (a < b || isnan(a)) ? a : b; }
static inline double kc_fmax(double a, double b)
{ return (a > b || isnan(a)) ? a : b; }
/* Python builtin min/max semantics (second-wins ties, NaN quirks). */
static inline double kc_pymin(double a, double b)
{ return (b < a) ? b : a; }
static inline double kc_pymax(double a, double b)
{ return (b > a) ? b : a; }
/* numpy scalar ``**`` is plain libm pow() — no array-style fast paths. */
static double kc_pow(double x, double y)
{
    return pow(x, y);
}
/* Single-precision twins for float32 (Volna) loops. */
static inline float kc_fminf(float a, float b)
{ return (a < b || isnan(a)) ? a : b; }
static inline float kc_fmaxf(float a, float b)
{ return (a > b || isnan(a)) ? a : b; }
static inline float kc_pyminf(float a, float b)
{ return (b < a) ? b : a; }
static inline float kc_pymaxf(float a, float b)
{ return (b > a) ? b : a; }
static float kc_powf(float x, float y)
{
    return powf(x, y);
}
"""


# ----------------------------------------------------------------------
# Chain-level emission
# ----------------------------------------------------------------------
def emit_chain_source(loops: Sequence, name: str = "chain") -> str:
    """One C translation unit for a whole loop chain.

    ``loops`` is any sequence of bound-loop-likes exposing ``kernel``,
    ``args``, ``n`` and ``start`` (``CompiledChain.loops``, or ad-hoc
    records for a single eager loop).  Raises :class:`NativeUnsupported`
    when any loop falls outside the translatable subset.
    """
    ptab = _PointerTable()
    emitters = [_LoopEmitter(j, bl, ptab) for j, bl in enumerate(loops)]
    parts: List[str] = [
        f"/* Generated by repro.kernelc.native — {name}: "
        f"{len(emitters)} loop(s). */",
        _PREAMBLE,
    ]
    if ptab.recipe:
        parts.append("/* pointer table:")
        for i, comment in enumerate(ptab.comments):
            parts.append(f" *   P[{i}] = {comment}")
        parts.append(" */")
        parts.append("")
    bodies: List[str] = []
    for em in emitters:
        bodies.extend(em.emit())
    parts.extend(bodies)

    runs, inits, folds, partials, fused = [], [], [], [], []
    for em in emitters:
        j = em.j
        runs.append(f"    case {j}: kc_loop{j}(P, lo, hi); break;")
        if em.red_args:
            inits.append(f"    case {j}: kc_loop{j}_init(); break;")
            folds.append(f"    case {j}: kc_loop{j}_fold(P); break;")
            partials.append(f"    case {j}: kc_loop{j}_partial(P); break;")
            fused.append(f"    kc_loop{j}_init();")
        fused.append(f"    kc_loop{j}(P, {em.bl.start}, {em.bl.n});")
        if em.red_args:
            fused.append(f"    kc_loop{j}_fold(P);")
    parts.append("void kc_loop_run(i64 j, void **P, i64 lo, i64 hi)")
    parts.append("{")
    parts.append("    switch (j) {")
    parts.extend(runs)
    parts.append("    default: break;")
    parts.append("    }")
    parts.append("}")
    for fname, cases, sig in (
        ("kc_loop_init", inits, "i64 j"),
        ("kc_loop_fold", folds, "i64 j, void **P"),
        ("kc_loop_partial", partials, "i64 j, void **P"),
    ):
        parts.append(f"void {fname}({sig})")
        parts.append("{")
        if cases:
            parts.append("    switch (j) {")
            parts.extend(cases)
            parts.append("    default: break;")
            parts.append("    }")
        else:
            parts.append("    (void)j;")
            if "P" in sig:
                parts.append("    (void)P;")
        parts.append("}")
    parts.append("/* Whole-chain replay: loops in program order, each")
    parts.append(" * reduction folded before the next loop can read it. */")
    parts.append("void kc_run_fused(void **P)")
    parts.append("{")
    parts.extend(fused)
    parts.append("}")
    parts.append("")
    return "\n".join(parts)


def source_key(source: str) -> str:
    """Content hash of an emitted TU — the native cache key.  Everything
    behavior-affecting (kernel bodies, strides, layouts, extents, loop
    ranges, constants) is baked into the source text, so equal keys mean
    interchangeable shared objects."""
    return hashlib.sha256(source.encode()).hexdigest()


# ----------------------------------------------------------------------
# Compilation + two-level (memory / disk) cache
# ----------------------------------------------------------------------
_CDEF = """
void kc_loop_run(long long j, void **P, long long lo, long long hi);
void kc_loop_init(long long j);
void kc_loop_fold(long long j, void **P);
void kc_loop_partial(long long j, void **P);
void kc_run_fused(void **P);
"""

#: cc flags: IEEE-strict (no contraction, no reassociation) — the
#: determinism contract depends on these.
#: ``-fno-builtin-pow``: GCC otherwise expands ``pow(x, 2.0)`` into
#: ``x * x`` at compile time, which rounds one ulp away from libm pow —
#: the numpy-scalar semantics the oracle interpreter exhibits.
CFLAGS = ["-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off",
          "-fno-builtin-pow", "-fno-builtin-powf"]

_stats = {
    "compiles": 0,
    "disk_hits": 0,
    "mem_hits": 0,
    "failures": 0,
    "fallbacks": 0,
}
_mem_libs: Dict[str, tuple] = {}
_cc_probe: Dict[tuple, Optional[str]] = {}


def native_cache_stats() -> Dict[str, int]:
    """Counters for the native compile cache (6th runtime cache kind)."""
    out = dict(_stats)
    out["entries"] = len(_mem_libs)
    return out


def count_native_fallback() -> None:
    """Record one chain/loop that fell back off the native path."""
    _stats["fallbacks"] += 1


def reset_native_cache() -> None:
    """Drop in-memory compiled libraries and zero the counters (tests).
    The on-disk cache is left alone — remove ``native_cache_dir()`` to
    clear it."""
    from .. import store

    _mem_libs.clear()
    _cc_probe.clear()
    for k in _stats:
        _stats[k] = 0
    c = store.counters("native")
    for k in c:
        c[k] = 0


def native_cache_dir() -> Path:
    """Directory holding compiled ``.so``/``.c`` pairs.

    ``$REPRO_NATIVE_CACHE`` keeps the historical flat layout (tests and
    deployments that pin a private binary cache); otherwise binaries
    live in the unified artifact store (``$REPRO_CACHE_DIR/native/``)
    under a machine-fingerprint subdirectory — compiled code is not
    portable across machines the way pickled plan documents are.
    """
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    from .. import store
    from ..tune.signature import machine_fingerprint

    return store.cache_root() / "native" / machine_fingerprint()


def library_key(source: str) -> str:
    """Disk key of one compiled TU: source content **plus CFLAGS**.

    Unlike :func:`source_key` (the pure source digest, the in-memory
    key), the disk key folds in the compile flags: they are
    behavior-affecting (``-fno-builtin-pow`` changes rounding), so a
    flags change must invalidate every cached binary.
    """
    return hashlib.sha256(
        "\x1f".join([source, *CFLAGS]).encode()
    ).hexdigest()


def _so_checksum_ok(so_path: Path) -> bool:
    """True when the ``.sum`` sidecar matches the binary's content."""
    try:
        data = so_path.read_bytes()
        expected = so_path.with_suffix(".sum").read_bytes()
        return hashlib.sha256(data).hexdigest().encode() == expected.strip()
    except OSError:
        return False


def _find_cc() -> Optional[str]:
    key = (os.environ.get("CC"), os.environ.get("PATH"))
    if key in _cc_probe:
        return _cc_probe[key]
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        _cc_probe[key] = shutil.which(cc)
        return _cc_probe[key]
    for cand in ("cc", "gcc", "clang"):
        found = shutil.which(cand)
        if found:
            _cc_probe[key] = found
            return found
    _cc_probe[key] = None
    return None


def compiler_available() -> bool:
    """Can this process compile and load native chains?

    ``REPRO_NATIVE_DISABLE_CC=1`` forces False (the CI fallback job);
    otherwise require both a C compiler on PATH and cffi.
    """
    if os.environ.get("REPRO_NATIVE_DISABLE_CC"):
        return False
    try:
        import cffi  # noqa: F401
    except ImportError:  # pragma: no cover - cffi is baked into the image
        return False
    return _find_cc() is not None


def load_native_library(source: str):
    """Compile (or fetch from cache) one TU; returns ``(ffi, lib, key)``."""
    from .. import store

    sha = source_key(source)
    cached = _mem_libs.get(sha)
    if cached is not None:
        _stats["mem_hits"] += 1
        return cached + (sha,)
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(_CDEF)
    disk_ok = not store.store_disabled("native")
    cache_dir = native_cache_dir()
    lkey = library_key(source)
    so_path = cache_dir / f"{lkey}.so"
    lib = None
    if disk_ok:
        if so_path.exists():
            # Verify the checksum sidecar before dlopen: a truncated
            # .so can map cleanly and then SIGBUS at call time, so
            # dlopen's own error path cannot be the integrity check.
            if not _so_checksum_ok(so_path):
                store.bump("native", "corrupt")
                store.unlink_quiet(so_path)
                store.unlink_quiet(so_path.with_suffix(".sum"))
            else:
                try:
                    lib = ffi.dlopen(str(so_path))
                    _stats["disk_hits"] += 1
                    store.bump("native", "disk_hits")
                except OSError:  # stale/foreign artifact: recompile below
                    lib = None
                    store.bump("native", "corrupt")
                    store.unlink_quiet(so_path)
                    store.unlink_quiet(so_path.with_suffix(".sum"))
        else:
            store.bump("native", "disk_misses")
    if lib is None:
        cc = _find_cc()
        if cc is None:
            raise NativeUnsupported("no C compiler on PATH")
        cache_dir.mkdir(parents=True, exist_ok=True)
        if disk_ok:
            # The .c rides along for debugging; the .so is the artifact.
            store.atomic_write_bytes(cache_dir / f"{lkey}.c", source.encode())
        fd, tmp_so = tempfile.mkstemp(
            suffix=".part", prefix=f".{lkey[:12]}-", dir=str(cache_dir)
        )
        os.close(fd)
        try:
            proc = subprocess.run(
                [cc, *CFLAGS, "-x", "c", "-", "-o", tmp_so, "-lm"],
                input=source, capture_output=True, text=True,
            )
            if proc.returncode != 0:
                _stats["failures"] += 1
                raise NativeUnsupported(
                    f"cc failed ({proc.returncode}): {proc.stderr[-800:]}"
                )
            _stats["compiles"] += 1
            store.count_build("native")
            if disk_ok:
                digest = hashlib.sha256(
                    Path(tmp_so).read_bytes()
                ).hexdigest()
                os.replace(tmp_so, so_path)
                store.atomic_write_bytes(
                    so_path.with_suffix(".sum"), digest.encode()
                )
                store.bump("native", "writes")
                store.lru_sweep(
                    cache_dir, store.max_entries_for("native"), "native",
                    ["*.so"],
                )
                lib = ffi.dlopen(str(so_path))
            else:
                # Persistence disabled: load the private temp binary and
                # unlink it (the dlopen mapping keeps it alive).
                lib = ffi.dlopen(tmp_so)
        finally:
            if os.path.exists(tmp_so):
                os.unlink(tmp_so)
    _mem_libs[sha] = (ffi, lib)
    return ffi, lib, sha


# ----------------------------------------------------------------------
# Executable chain programs
# ----------------------------------------------------------------------
class NativeChainProgram:
    """A compiled chain plus its pointer-table binding.

    The shared object is pure code — all runtime state arrives through
    the ``void **`` table, refreshed from the live arrays before every
    run, so one cached ``.so`` serves any process (and any number of
    identically-shaped chains via :meth:`rebind`).
    """

    def __init__(self, source: str, loops: Sequence,
                 recipe: List[Tuple[int, int, str]]) -> None:
        self.source = source
        self.loops = tuple(loops)
        self.recipe = list(recipe)
        self.ffi, self.lib, self.key = load_native_library(source)
        self._ptab = self.ffi.new("void *[]", max(1, len(recipe)))
        #: (argpos, slot) reduction pairs per loop.
        self.red_args = []
        ptab_seen: Dict[int, int] = {}
        for j, bl in enumerate(self.loops):
            reds = []
            for i, arg in enumerate(bl.args):
                if arg.is_global and arg.access.is_reduction:
                    slot = self._slot_of(arg.dat._data, ptab_seen, j, i)
                    reds.append((i, slot))
            self.red_args.append(reds)

    def _slot_of(self, array, seen, j, i) -> int:
        # Recompute the first-encounter slot assignment (matches the
        # emitter's _PointerTable exactly).
        for slot, (lj, li, kind) in enumerate(self.recipe):
            arr = self._recipe_array(slot, self.loops)
            if arr is array:
                return slot
        raise NativeUnsupported("reduction buffer missing from pointer table")

    def _recipe_array(self, slot: int, loops) -> np.ndarray:
        j, i, kind = self.recipe[slot]
        arg = loops[j].args[i]
        if kind == "dat":
            return arg.dat._storage
        if kind == "map":
            return arg.map.values
        return arg.dat._data  # gbl

    def _refresh(self, loops=None, overrides: Optional[Dict[int, np.ndarray]] = None) -> None:
        loops = self.loops if loops is None else loops
        for slot in range(len(self.recipe)):
            arr = self._recipe_array(slot, loops)
            if overrides and slot in overrides:
                arr = overrides[slot]
            self._ptab[slot] = self.ffi.cast("void *", arr.ctypes.data)

    # -- replay entry points -------------------------------------------
    def run_fused(self) -> None:
        self._refresh()
        self.lib.kc_run_fused(self._ptab)

    def run_loop(self, j: int, lo: int, hi: int) -> None:
        self.lib.kc_loop_run(j, self._ptab, lo, hi)

    def loop_init(self, j: int) -> None:
        self.lib.kc_loop_init(j)

    def loop_fold(self, j: int) -> None:
        self.lib.kc_loop_fold(j, self._ptab)

    def loop_partial(self, j: int) -> None:
        self.lib.kc_loop_partial(j, self._ptab)

    def run_eager(self, args, reductions: Dict[int, np.ndarray]) -> None:
        """Single-loop eager entry: run loop 0 of this program over the
        given live ``args``, leaving raw reduction partials in the
        caller's ``reductions`` accumulators (``Backend.execute`` then
        folds them — one combine, exactly like every other backend)."""
        bl = _EagerLoop(None, tuple(args), 0, 0)
        overrides = {
            slot: reductions[argpos]
            for argpos, slot in self.red_args[0]
            if argpos in reductions
        }
        self._refresh(loops=(bl,), overrides=overrides)
        if self.red_args[0]:
            self.lib.kc_loop_init(0)
        self.lib.kc_loop_run(0, self._ptab, self.loops[0].start,
                             self.loops[0].n)
        if self.red_args[0]:
            self.lib.kc_loop_partial(0, self._ptab)


@dataclass(frozen=True)
class _EagerLoop:
    """Minimal bound-loop record for single-loop (eager) programs."""

    kernel: object
    args: tuple
    n: int
    start: int


def build_chain_program(loops: Sequence, name: str = "chain") -> NativeChainProgram:
    """Emit + compile + bind one chain.  Raises :class:`NativeUnsupported`
    on untranslatable kernels or compile failure."""
    ptab = _PointerTable()
    # Re-run spec construction to obtain the recipe (emit_chain_source
    # builds its own identical table — slot order is deterministic).
    for j, bl in enumerate(loops):
        _LoopEmitter(j, bl, ptab)
    source = emit_chain_source(loops, name=name)
    return NativeChainProgram(source, loops, ptab.recipe)


def build_eager_program(kernel, args, n: int, start: int) -> NativeChainProgram:
    """A one-loop program for eager ``par_loop`` dispatch."""
    bl = _EagerLoop(kernel, tuple(args), int(n), int(start))
    return build_chain_program([bl], name=f"eager:{kernel.name}")
