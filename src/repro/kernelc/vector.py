"""Vector emitter: lower a :class:`~repro.kernelc.ir.KernelIR` to a
batched NumPy kernel.

The generated function is the cross-element SIMD form of the paper's
Section 4 (and of Sun et al.'s cross-element batching study): every
lane-carrying parameter gains a leading ``lanes`` axis — ``(dim,)``
becomes ``(lanes, dim)``, an ``IDX_ALL`` vector argument ``(arity, dim)``
becomes ``(lanes, arity, dim)`` — and the body is rewritten so each
scalar operation becomes one whole-array NumPy operation over all lanes.
READ globals keep their scalar shape (they are broadcast constants, like
the paper's splatted registers).

Lowering rules
--------------
* Subscripts of batched arrays gain a leading full slice:
  ``q[0] -> q[:, 0]``, ``x[k][1] -> x[:, k][:, 1]``.
* ``min``/``max`` builtins become the :func:`repro.simd.vmin` /
  :func:`~repro.simd.vmax` intrinsics; conditional expressions become
  :func:`~repro.simd.select` — the generated code speaks the same
  branchless vocabulary the hand-written kernels did, so it also runs
  on :class:`repro.simd.VecReg` register-width blocks.
* Branches are lowered to mask arithmetic: each ``if`` computes a lane
  mask, branch-local assignments get fresh names that are
  ``select``-merged at the join, and stores inside a branch become
  masked read-modify-writes ``a[:, i] = select(m, new, a[:, i])`` —
  lanes outside the mask keep their value *bitwise*, so results are
  exactly the scalar path's (stronger than the classic
  ``+= select(m, v, 0.0)`` rewrite, which perturbs ``-0.0``).
* Bounded ``range`` loops over a dim are *fused* into one whole-slice
  statement (``for n in range(4): qold[n] = q[n]`` becomes
  ``qold[:, :] = q[:, :]``) when every statement is elementwise in the
  loop variable — the loop then carries no cross-iteration dependency,
  so statement-major and element-major orders are the same sequence of
  per-element operations and results stay bitwise identical.  Loops
  outside that pattern (index arithmetic like ``x[(k+1) % 4]``,
  loop-carried locals, reductions into a fixed slot) are kept as
  (short, lane-free) Python loops preserving the scalar operation
  order exactly.

Every statement is emitted through :func:`ast.unparse`, so operator
precedence is always parenthesized correctly and the output is
deterministic — golden-source tests diff it as text.
"""

from __future__ import annotations

import ast
import copy
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..simd import intrinsics as _intrinsics
from .ir import SAssign, SAug, SFor, SIf, KernelIR, UnvectorizableKernel

def _lane_select(mask, if_true, if_false):
    """Lane-wise select whose mask broadcasts over trailing axes.

    Same blend semantics as :func:`repro.simd.select` (``np.where``),
    but a ``(lanes,)`` mask is expanded to ``(lanes, 1, ...)`` when the
    operands carry trailing component axes — the case of joining
    branch-local *array* values (``w = x[1]`` vs ``w = x[0] * 0.5``,
    both ``(lanes, dim)``).
    """
    m = np.asarray(mask)
    ndim = max(np.ndim(if_true), np.ndim(if_false))
    if m.ndim and ndim > m.ndim:
        m = m.reshape(m.shape + (1,) * (ndim - m.ndim))
    return np.where(m, if_true, if_false)


def _lane_pow(base, exp):
    """Lane-wise power matching numpy *scalar* ``**`` bitwise.

    The scalar interpreter (the bitwise oracle) evaluates ``a ** b`` on
    ``np.float64`` scalars, which is plain C ``pow()``.  Array ``**``
    instead fast-paths small exponents (``np.square``, ``sqrt``,
    reciprocal), which rounds differently by one ulp on some inputs.
    ``np.float_power`` takes the ``pow()`` path elementwise, so it is
    the faithful vectorization for float64 operands; other dtypes keep
    plain ``**`` (float32 has no pow-path vector primitive, and integer
    ``**`` must stay integer).
    """
    if np.result_type(base, exp) == np.float64:
        return np.float_power(base, exp)
    return base ** exp


#: Reserved names the generated source resolves against (injected into
#: the exec namespace; user code never sees them).
_RESERVED = {
    "_kc_np": np,
    "_kc_select": _lane_select,
    "_kc_vmin": _intrinsics.vmin,
    "_kc_vmax": _intrinsics.vmax,
    "_kc_pow": _lane_pow,
}

_INDENT = "    "


def _load(node: ast.expr) -> ast.expr:
    """A Load-context copy of a (possibly Store-context) target."""
    dup = copy.deepcopy(node)
    for sub in ast.walk(dup):
        if hasattr(sub, "ctx"):
            sub.ctx = ast.Load()
    return dup


def _name(ident: str) -> ast.Name:
    return ast.Name(id=ident, ctx=ast.Load())


def _call(func: str, args: Sequence[ast.expr]) -> ast.Call:
    return ast.Call(func=_name(func), args=list(args), keywords=[])


def _unparse(node: ast.AST) -> str:
    return ast.unparse(ast.fix_missing_locations(node))


def _normalize_shapes(shapes) -> List[Tuple[bool, Optional[int]]]:
    """Accept plain batched flags or (batched, fuse_dim) pairs."""
    out = []
    for s in shapes:
        if isinstance(s, tuple):
            out.append((bool(s[0]), s[1]))
        else:
            out.append((bool(s), None))
    return out


class VectorEmitter:
    """One emission of one kernel IR for one argument-shape signature.

    ``shapes`` gives one entry per kernel parameter: either a plain
    batched flag, or a ``(batched, fuse_dim)`` pair where ``fuse_dim``
    is the trailing-axis extent a dim-loop may be fused over (the Dat's
    ``dim`` for plain data arguments, ``None`` for vector arguments and
    READ globals).
    """

    def __init__(self, ir: KernelIR, shapes) -> None:
        shapes = _normalize_shapes(shapes)
        if len(shapes) != len(ir.params):
            raise UnvectorizableKernel(
                f"kernel {ir.name!r} takes {len(ir.params)} parameters but "
                f"the loop supplies {len(shapes)} arguments"
            )
        self.ir = ir
        #: Original names currently known to carry the lane axis:
        #: parameters, view aliases (``x1 = x[k]``), and any local
        #: computed from lane-carrying operands.  Deliberately
        #: conservative — a lane-scalar local marked batched is harmless
        #: because valid scalar kernels never subscript scalars.
        self.batched = {
            p for p, (flag, _) in zip(ir.params, shapes) if flag
        }
        #: Parameter -> trailing-axis extent usable for dim-loop fusion.
        self.fuse_dim = {
            p: dim
            for p, (flag, dim) in zip(ir.params, shapes)
            if flag and dim is not None
        }
        #: Loop variables currently lowered to a full slice (fused loops).
        self._fuse_vars: set = set()
        self._counter = 0
        self.lines: List[str] = []
        self.depth = 1

    # -- plumbing ------------------------------------------------------
    def _fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}__{self._counter}"

    def _emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text)

    # -- expression rewriting -----------------------------------------
    def _rx(self, node: ast.expr, env: Dict[str, str]) -> Tuple[ast.expr, bool]:
        """Rewrite one expression; returns (new node, is lane-batched)."""
        if isinstance(node, ast.Name):
            new = env.get(node.id, node.id)
            return _name(new), node.id in self.batched
        if isinstance(node, ast.Constant):
            return node, False
        if isinstance(node, ast.Subscript):
            value, vb = self._rx(node.value, env)
            index = self._rx_index(node.slice, env)
            if vb:
                index = self._prepend_lane(index)
            return (
                ast.Subscript(value=value, slice=index, ctx=ast.Load()),
                vb,
            )
        if isinstance(node, ast.BinOp):
            left, lb = self._rx(node.left, env)
            right, rb = self._rx(node.right, env)
            if isinstance(node.op, ast.Pow) and (lb or rb):
                # Lane-batched ``**`` must reproduce the *scalar*
                # interpreter's pow (C pow()), not the array fast paths.
                return _call("_kc_pow", [left, right]), True
            return ast.BinOp(left=left, op=node.op, right=right), lb or rb
        if isinstance(node, ast.UnaryOp):
            operand, ob = self._rx(node.operand, env)
            return ast.UnaryOp(op=node.op, operand=operand), ob
        if isinstance(node, ast.Compare):
            left, lb = self._rx(node.left, env)
            right, rb = self._rx(node.comparators[0], env)
            return (
                ast.Compare(left=left, ops=list(node.ops),
                            comparators=[right]),
                lb or rb,
            )
        if isinstance(node, ast.IfExp):
            test, tb = self._rx(node.test, env)
            body, bb = self._rx(node.body, env)
            orelse, ob = self._rx(node.orelse, env)
            return _call("_kc_select", [test, body, orelse]), tb or bb or ob
        if isinstance(node, ast.Tuple):
            pairs = [self._rx(e, env) for e in node.elts]
            return (
                ast.Tuple(elts=[p[0] for p in pairs], ctx=ast.Load()),
                any(p[1] for p in pairs),
            )
        if isinstance(node, ast.Call):
            args = [self._rx(a, env) for a in node.args]
            flag = any(a[1] for a in args)
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("min", "max")
                and func.id not in self.ir.namespace
            ):
                # Builtin min/max only — a name resolving in the kernel's
                # namespace (e.g. ``from numpy import min``) keeps its own
                # (already validated) semantics.
                name = "_kc_vmin" if func.id == "min" else "_kc_vmax"
                return _call(name, [a[0] for a in args]), flag
            return (
                ast.Call(func=copy.deepcopy(func),
                         args=[a[0] for a in args], keywords=[]),
                flag,
            )
        raise UnvectorizableKernel(
            f"unsupported expression in {self.ir.name}: {ast.unparse(node)!r}"
        )

    def _rx_index(self, node: ast.expr, env: Dict[str, str]) -> ast.expr:
        """Rewrite a subscript index (lane-invariant by validation)."""
        if isinstance(node, ast.Name) and node.id in self._fuse_vars:
            # Fused dim loop: the loop variable becomes a full slice.
            return ast.Slice(lower=None, upper=None, step=None)
        if isinstance(node, ast.Tuple):
            return ast.Tuple(
                elts=[self._rx_index(e, env) for e in node.elts],
                ctx=ast.Load(),
            )
        dup = copy.deepcopy(node)
        for sub in ast.walk(dup):
            if isinstance(sub, ast.Name):
                sub.id = env.get(sub.id, sub.id)
        return dup

    @staticmethod
    def _prepend_lane(index: ast.expr) -> ast.expr:
        lane = ast.Slice(lower=None, upper=None, step=None)
        if isinstance(index, ast.Tuple):
            return ast.Tuple(elts=[lane] + list(index.elts), ctx=ast.Load())
        return ast.Tuple(elts=[lane, index], ctx=ast.Load())

    # -- statement lowering -------------------------------------------
    def emit_block(
        self,
        stmts: Sequence,
        env: Dict[str, str],
        mask: Optional[str],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, SAssign):
                self._stmt_assign(stmt, env, mask)
            elif isinstance(stmt, SAug):
                self._stmt_aug(stmt, env, mask)
            elif isinstance(stmt, SFor):
                self._stmt_for(stmt, env, mask)
            elif isinstance(stmt, SIf):
                self._stmt_if(stmt, env, mask)
            else:  # pragma: no cover - builder emits only the above
                raise UnvectorizableKernel(f"unknown IR statement {stmt!r}")

    def _bind_local(
        self, name: str, env: Dict[str, str], mask: Optional[str]
    ) -> str:
        if mask is None:
            env[name] = name
            return name
        fresh = self._fresh(name)
        env[name] = fresh
        return fresh

    def _stmt_assign(self, s: SAssign, env, mask) -> None:
        target = s.targets[0]
        if isinstance(target, ast.Subscript):
            self._store(target, s.value, None, env, mask)
            return
        value, vb = self._rx(s.value, env)
        if isinstance(target, ast.Name):
            bound = self._bind_local(target.id, env, mask)
            # Any value derived from a batched operand carries the lane
            # axis.  Over-marking lane-scalar locals is harmless: a
            # subscript of a local only occurs in valid scalar kernels
            # when the local is an array per element — exactly the case
            # that needs the lane prefix.
            self._mark_batched(target.id, vb)
            self._emit(f"{bound} = {_unparse(value)}")
            return
        # Tuple of plain names.
        names = [t.id for t in target.elts]
        if (
            isinstance(s.value, ast.Tuple)
            and len(s.value.elts) == len(names)
        ):
            flags = [self._rx(e, env)[1] for e in s.value.elts]
        else:
            # Opaque multi-value RHS (a helper call): propagate the
            # whole expression's flag to every target.
            flags = [vb] * len(names)
        bounds = [self._bind_local(n, env, mask) for n in names]
        for n, flag in zip(names, flags):
            self._mark_batched(n, flag)
        self._emit(f"{', '.join(bounds)} = {_unparse(value)}")

    def _mark_batched(self, name: str, flag: bool) -> None:
        if flag:
            self.batched.add(name)
        else:
            self.batched.discard(name)

    def _stmt_aug(self, s: SAug, env, mask) -> None:
        if isinstance(s.target, ast.Subscript):
            self._store(s.target, s.value, s.op, env, mask)
            return
        # Name target: scalar-local accumulation; lower to a rebind so
        # the join machinery masks it like any other local.
        name = s.target.id
        old = env.get(name, name)
        value, vb = self._rx(s.value, env)
        combined = ast.BinOp(left=_name(old), op=s.op, right=value)
        was_batched = name in self.batched
        bound = self._bind_local(name, env, mask)
        self._mark_batched(name, was_batched or vb)
        self._emit(f"{bound} = {_unparse(combined)}")

    def _store(self, target, value, op, env, mask) -> None:
        """Subscript store, plain or masked read-modify-write."""
        new_target, _ = self._rx(_load(target), env)
        value_rx, _ = self._rx(value, env)
        tgt = _unparse(new_target)
        if mask is None:
            if op is None:
                self._emit(f"{tgt} = {_unparse(value_rx)}")
            else:
                aug = ast.AugAssign(
                    target=_store_ctx(new_target), op=op, value=value_rx
                )
                self._emit(_unparse(aug))
            return
        if op is None:
            merged = _call("_kc_select", [_name(mask), value_rx, new_target])
        else:
            updated = ast.BinOp(left=_load(new_target), op=op, right=value_rx)
            merged = _call("_kc_select", [_name(mask), updated, new_target])
        self._emit(f"{tgt} = {_unparse(merged)}")

    def _stmt_for(self, s: SFor, env, mask) -> None:
        env[s.var] = s.var
        if mask is None and self._fusable(s):
            # Dim-loop fusion: every statement is elementwise in the
            # loop variable, so statement-major whole-slice execution
            # performs the same per-element operations as the scalar
            # element-major loop — one NumPy statement per line instead
            # of one per (line, iteration).
            self._fuse_vars.add(s.var)
            self.emit_block(s.body, env, None)
            self._fuse_vars.discard(s.var)
            return
        if s.start == 0 and s.step == 1:
            rng = f"range({s.stop})"
        elif s.step == 1:
            rng = f"range({s.start}, {s.stop})"
        else:
            rng = f"range({s.start}, {s.stop}, {s.step})"
        self._emit(f"for {s.var} in {rng}:")
        self.depth += 1
        self.emit_block(s.body, env, mask)
        self.depth -= 1

    # -- dim-loop fusion ----------------------------------------------
    def _fusable(self, s: SFor) -> bool:
        """Whether the loop can be fused into whole-slice statements.

        Conservative pattern: ``range(d)`` from zero with unit step,
        every statement a subscript store ``P[var] (op)= expr`` where
        ``P`` is a batched data parameter of trailing extent exactly
        ``d``, and every use of ``var`` in ``expr`` is as the bare sole
        index of such a parameter.  Loop-invariant operands must be
        lane-free (constants, or subscripts of non-batched names such
        as READ globals and closure arrays) so no broadcasting mismatch
        can arise.  Everything else keeps the faithful Python loop.
        """
        if s.start != 0 or s.step != 1:
            return False
        for stmt in s.body:
            if isinstance(stmt, SAssign):
                if len(stmt.targets) != 1:
                    return False
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, SAug):
                target, value = stmt.target, stmt.value
            else:
                return False
            if not self._fuse_store_ok(target, s.var, s.stop):
                return False
            if not self._fuse_expr_ok(value, s.var, s.stop):
                return False
        return True

    def _fuse_store_ok(self, target, var: str, stop: int) -> bool:
        return (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and isinstance(target.slice, ast.Name)
            and target.slice.id == var
            and self.fuse_dim.get(target.value.id) == stop
        )

    def _fuse_expr_ok(self, node, var: str, stop: int) -> bool:
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Subscript):
            if (
                isinstance(node.value, ast.Name)
                and isinstance(node.slice, ast.Name)
                and node.slice.id == var
            ):
                return self.fuse_dim.get(node.value.id) == stop
            # Loop-invariant subscript: must not mention the loop
            # variable and must be lane-free (non-batched root).
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and sub.id == var:
                    return False
            root = node.value
            while isinstance(root, ast.Subscript):
                root = root.value
            return isinstance(root, ast.Name) and root.id not in self.batched
        if isinstance(node, ast.BinOp):
            return (
                self._fuse_expr_ok(node.left, var, stop)
                and self._fuse_expr_ok(node.right, var, stop)
            )
        if isinstance(node, ast.UnaryOp):
            return self._fuse_expr_ok(node.operand, var, stop)
        if isinstance(node, ast.Call):
            return all(
                self._fuse_expr_ok(a, var, stop) for a in node.args
            )
        return False

    def _stmt_if(self, s: SIf, env, mask) -> None:
        test, _ = self._rx(s.test, env)
        tname = self._fresh("_kc_t")
        self._emit(f"{tname} = {_unparse(test)}")
        if mask is None:
            m_true = tname
            m_false = self._fresh("_kc_f")
            self._emit(f"{m_false} = _kc_np.logical_not({tname})")
        else:
            m_true = self._fresh("_kc_m")
            self._emit(
                f"{m_true} = _kc_np.logical_and({mask}, {tname})"
            )
            m_false = self._fresh("_kc_m")
            self._emit(
                f"{m_false} = _kc_np.logical_and"
                f"({mask}, _kc_np.logical_not({tname}))"
            )
        env_t = dict(env)
        env_f = dict(env)
        # Batched classification is branch-scoped: each branch starts
        # from the pre-branch set, and the join takes the union (a
        # select() of lane-carrying values carries lanes; over-marking
        # is safe, order-dependence is not).
        pre_batched = set(self.batched)
        self.emit_block(s.body, env_t, m_true)
        batched_t = self.batched
        self.batched = set(pre_batched)
        self.emit_block(s.orelse, env_f, m_false)
        self.batched |= batched_t
        # Join: merge branch-local rebinds back into the parent scope.
        assigned: List[str] = []
        for branch_env in (env_t, env_f):
            for key, val in branch_env.items():
                if val != env.get(key) and key not in assigned:
                    assigned.append(key)
        for name in assigned:
            pre = env.get(name)
            v_t = env_t.get(name)
            v_f = env_f.get(name)
            in_t = v_t != pre
            in_f = v_f != pre
            if in_t and in_f:
                if pre is None:
                    expr = (
                        f"_kc_select({tname}, {v_t}, {v_f})"
                    )
                else:
                    expr = (
                        f"_kc_select({m_true}, {v_t}, "
                        f"_kc_select({m_false}, {v_f}, {pre}))"
                    )
            elif in_t:
                if pre is None:
                    env[name] = v_t
                    continue
                expr = f"_kc_select({m_true}, {v_t}, {pre})"
            else:
                if pre is None:
                    env[name] = v_f
                    continue
                expr = f"_kc_select({m_false}, {v_f}, {pre})"
            joined = self._fresh(name)
            self._emit(f"{joined} = {expr}")
            env[name] = joined

    # -- entry ---------------------------------------------------------
    def emit(self) -> str:
        header = (
            f"def {self.ir.name}__kcvec({', '.join(self.ir.params)}):"
        )
        doc = (
            '    """Generated batched kernel — repro.kernelc vector '
            'emitter; do not edit."""'
        )
        env = {p: p for p in self.ir.params}
        self.emit_block(self.ir.body, env, None)
        body = self.lines if self.lines else [_INDENT + "pass"]
        return "\n".join([header, doc] + body) + "\n"


def _store_ctx(node: ast.expr) -> ast.expr:
    dup = copy.deepcopy(node)
    dup.ctx = ast.Store()
    return dup


def emit_vector_source(ir: KernelIR, shapes) -> str:
    """Generated source of the batched kernel for one shape signature.

    ``shapes`` is one entry per parameter: a plain batched flag or a
    ``(batched, fuse_dim)`` pair (see :class:`VectorEmitter`).
    """
    return VectorEmitter(ir, shapes).emit()


def compile_vector(ir: KernelIR, shapes):
    """Emit and compile the batched kernel, returning the callable."""
    return compile_vector_source(ir, emit_vector_source(ir, shapes))


def compile_vector_source(ir: KernelIR, source: str):
    """Compile already-emitted batched-kernel source to a callable.

    Split from :func:`compile_vector` so the persistent kernelc store
    can replay a generated source without re-running the emitter.  The
    function executes against the scalar kernel's own namespace
    (globals + closure constants) plus the reserved ``_kc_*`` lowering
    helpers, so free names (flow constants, ``np``, ``select``, helper
    functions) resolve exactly as they did in the scalar source.
    """
    namespace = dict(ir.namespace)
    namespace.update(_RESERVED)
    code = compile(source, f"<kernelc vector {ir.name}>", "exec")
    exec(code, namespace)
    fn = namespace[f"{ir.name}__kcvec"]
    fn.__source__ = source  # type: ignore[attr-defined]
    fn.__kernelc__ = True  # type: ignore[attr-defined]
    return fn
