"""Benchmarks regenerating Tables V-IX (per-kernel performance model).

Assertions check the *shape* the paper reports: per-kernel model values
within a tolerance band of the published measurements, bottleneck
classifications, and the relative-performance orderings of Table IX.
"""

from repro.bench.tables import table5, table6, table7, table8, table9

from conftest import save_and_print


def _rows_for(t, **filters):
    out = []
    for r in t.rows:
        if all(r.get(k) == v for k, v in filters.items()):
            out.append(r)
    return out


#: Rows excluded from strict banding, with reasons (EXPERIMENTS.md S3):
#: - bres_calc: sub-0.1 s runtime, the paper itself drops it from analysis;
#: - the paper's Volna rows outside the "MPI CPU 1" column are internally
#:   inconsistent with its own CPU 1 column (4.5-5.8x gaps on bandwidth-
#:   bound kernels vs a 1.48x hardware bandwidth ratio — evidently a
#:   different iteration count), so no self-consistent model can match
#:   both; we calibrate against the CPU 1 / Phi / K40 columns;
#: - space_disc on the K40: our space_disc reads the cell states for the
#:   well-balanced bed-slope term, moving ~2x the paper variant's data.
VOLNA_KERNELS = {"RK_1", "RK_2", "sim_1", "compute_flux",
                 "numerical_flux", "space_disc"}


def _excluded(row) -> bool:
    kernel = row["Kernel"]
    if kernel == "bres_calc":
        return True
    group = row.get("Config") or row.get("Device") or row.get("Version")
    if kernel in VOLNA_KERNELS and group in ("MPI CPU 2", "CPU 1", "CPU 2",
                                             "Xeon Phi"):
        # Volna columns with the paper-internal iteration inconsistency
        # (Table V CPU 2, Table VI both devices, Table VII).
        return True
    if kernel == "space_disc" and group == "CUDA K40":
        return True
    return False


def _check_band(rows, rel=0.6, min_frac=0.8, time_col="time s",
                paper_col="paper t", exclude=True):
    """At least ``min_frac`` of rows within ``rel`` of the paper value."""
    checked, ok = 0, 0
    for r in rows:
        if r.get(paper_col) in (None, ""):
            continue
        if exclude and _excluded(r):
            continue
        checked += 1
        ratio = r[time_col] / r[paper_col]
        if 1.0 / (1.0 + rel) <= ratio <= 1.0 + rel:
            ok += 1
    assert checked > 0
    assert ok / checked >= min_frac, f"only {ok}/{checked} rows in band"


class TestTable5:
    def test_table5_baseline(self, run_once, results_dir):
        t = run_once(table5)
        save_and_print(t, "table5", results_dir)
        _check_band(t.rows, rel=0.6)
        # adt_calc / compute_flux are compute-bound scalar on CPU 1.
        adt = _rows_for(t, Config="MPI CPU 1", Kernel="adt_calc")[0]
        assert adt["bound"] == "compute"
        flux = _rows_for(t, Config="MPI CPU 1", Kernel="compute_flux")[0]
        assert flux["bound"] == "compute"
        # Direct kernels are bandwidth-bound everywhere.
        for cfgname in ("MPI CPU 1", "MPI CPU 2", "CUDA K40"):
            save = _rows_for(t, Config=cfgname, Kernel="save_soln")[0]
            assert save["bound"] == "bandwidth"


class TestTable6:
    def test_table6_opencl(self, run_once, results_dir):
        t = run_once(table6)
        save_and_print(t, "table6", results_dir)
        _check_band(t.rows, rel=0.7)
        # Vectorization flags must match the paper's compiler report.
        for r in t.rows:
            if r["Device"] == "CPU 1" and r["Kernel"] in (
                "save_soln", "res_calc", "update"
            ):
                assert not r["vectorized"], r["Kernel"]
            if r["Device"] == "Xeon Phi":
                assert r["vectorized"], r["Kernel"]


class TestTable7:
    def test_table7_vectorized(self, run_once, results_dir):
        t = run_once(table7)
        save_and_print(t, "table7", results_dir)
        _check_band(t.rows, rel=0.6)
        # Vectorization removed the compute bottleneck: adt_calc becomes
        # bandwidth-bound on CPU 2 (Section 6.6).
        adt2 = _rows_for(t, Device="CPU 2", Kernel="adt_calc")[0]
        assert adt2["bound"] == "bandwidth"
        # CPU 2 beats CPU 1 on every kernel.
        for kernel in ("save_soln", "adt_calc", "res_calc", "update"):
            t1 = _rows_for(t, Device="CPU 1", Kernel=kernel)[0]["time s"]
            t2 = _rows_for(t, Device="CPU 2", Kernel=kernel)[0]["time s"]
            assert t2 < t1


class TestTable8:
    def test_table8_phi(self, run_once, results_dir):
        t = run_once(table8)
        save_and_print(t, "table8", results_dir)
        _check_band(t.rows, rel=0.7)
        for kernel in ("adt_calc", "res_calc", "compute_flux",
                       "space_disc"):
            scalar = _rows_for(t, Version="Scalar", Kernel=kernel)[0]
            intr = _rows_for(t, Version="Intrinsics", Kernel=kernel)[0]
            auto = _rows_for(t, Version="Auto-vectorized", Kernel=kernel)[0]
            # Intrinsics clearly beat scalar on indirect kernels (2-4x).
            assert intr["time s"] < 0.65 * scalar["time s"], kernel
            # Auto-vectorization never approaches intrinsics quality.
            assert auto["time s"] > intr["time s"], kernel
        # The scatter kernel gets *worse* under auto-vectorization.
        res_auto = _rows_for(t, Version="Auto-vectorized",
                             Kernel="res_calc")[0]
        res_scalar = _rows_for(t, Version="Scalar", Kernel="res_calc")[0]
        assert res_auto["time s"] > res_scalar["time s"]


class TestTable9:
    def test_table9_relative(self, run_once, results_dir):
        t = run_once(table9)
        save_and_print(t, "table9", results_dir)
        for row in t.rows:
            kernel = row["Kernel"]
            # Direct kernels: ranking CPU1 < CPU2 < Phi < K40 (paper).
            if kernel in ("save_soln", "update", "RK_1", "RK_2"):
                assert row["K40"] > row["Xeon Phi"] > row["CPU 2"] > 1.0
            # Scatter kernels: the Phi falls *below* CPU 1 (paper: 0.75-
            # 0.81), while the K40 keeps a reduced lead.
            if kernel in ("res_calc", "space_disc"):
                assert row["Xeon Phi"] < 1.3
                assert row["K40"] < 2.6
            # Model ratio within a factor-2 band of the paper's ratio.
            for col in ("CPU 2", "Xeon Phi", "K40"):
                paper = row[f"paper {col}"]
                assert 0.5 <= row[col] / paper <= 2.0, (kernel, col)
