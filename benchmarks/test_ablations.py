"""Ablation benchmarks for the design choices DESIGN.md §5 calls out.

These are *measured* (wall-clock) experiments on this machine's
backends, quantifying the trade-offs the paper discusses qualitatively:
plan construction vs reuse, block-size locality vs balance, AoS vs SoA
gathers, base-numbering locality, and halo growth with rank count.
"""

import numpy as np
import pytest

from repro.apps.airfoil import AirfoilSim
from repro.core import Runtime, build_plan
from repro.core.plan import plan_signature
from repro.mesh import (
    make_airfoil_mesh,
    rcm_renumber_cells,
    scramble,
)
from repro.partition import rcb_partition

from conftest import save_and_print


@pytest.fixture(scope="module")
def mesh():
    return make_airfoil_mesh(48, 24)


class TestPlanCacheAblation:
    """Plans are expensive; caching them across time steps is what makes
    the two-level scheme viable (OP2 does the same)."""

    def test_plan_build_vs_cached_loop(self, benchmark, mesh, results_dir):
        # Eager mode: this ablation measures the per-par_loop cache
        # levels; chained steps hit the chain cache instead and stop
        # consulting the loop cache at all (see TestLoopChainAblation).
        sim = AirfoilSim(mesh, runtime=Runtime("vectorized",
                                               block_size=256),
                         chained=False)
        loops = sim._loop_args()
        set_, *args = loops["res_calc"]

        benchmark.group = "ablation-plan-cache"
        benchmark.pedantic(
            lambda: build_plan(set_, args, block_size=256),
            rounds=3, iterations=1,
        )
        build_time = benchmark.stats.stats.mean

        sim.step()  # plans now cached
        import time as _time

        t0 = _time.perf_counter()
        sim.step()
        step_time = _time.perf_counter() - t0

        from repro.bench.harness import ReportTable

        t = ReportTable("Ablation: plan build cost vs cached step")
        t.add(**{"res_calc plan build s": round(build_time, 4),
                 "full cached step s": round(step_time, 4),
                 "builds amortized per step":
                     round(build_time / max(step_time, 1e-9), 2)})
        t.note("One uncached plan build costs a large fraction of (or "
               "more than) an entire cached time step — caching is "
               "mandatory, exactly as in OP2.")
        save_and_print(t, "ablation_plan_cache", results_dir)
        # The build must be non-trivial relative to a step; and the
        # two-level cache must make repeated steps plan-free: after the
        # warm-up step every call site answers from the loop cache and
        # no new structural plans are built.
        rt = sim.runtime
        misses_after_warm = rt.plans.misses
        sim.step()
        assert rt.plans.misses == misses_after_warm
        assert rt.loop_cache_hits > rt.loop_cache_misses

    def test_plan_signature_is_cheap(self, benchmark, mesh):
        sim = AirfoilSim(mesh)
        set_, *args = sim._loop_args()["res_calc"]
        benchmark.group = "ablation-plan-cache"
        result = benchmark(
            lambda: plan_signature(set_, args, 256, "two_level")
        )
        assert result is not None


class TestBlockSizeAblation:
    """Fig 8b's knob, measured: tiny blocks pay scheduling overhead,
    huge blocks lose nothing here (single thread) — the flat-right curve
    shows the overhead is per-block, motivating the paper's tuning."""

    @pytest.mark.parametrize("block_size", [16, 64, 256, 1024, 4096])
    def test_block_size_sweep(self, benchmark, mesh, block_size):
        sim = AirfoilSim(mesh, runtime=Runtime("vectorized",
                                               block_size=block_size))
        sim.step()
        benchmark.group = "ablation-block-size"
        benchmark(sim.step)

    def test_small_blocks_slower(self, benchmark, mesh, results_dir):
        from repro.bench.harness import ReportTable
        from repro.bench.measured import time_app

        t = ReportTable("Ablation: mini-partition (block) size")
        times = {}
        benchmark.group = "ablation-block-size"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        for bs in (16, 256, 4096):
            # batch="chunk" keeps the per-block dispatch loop this knob
            # measures; the whole-color path concatenates same-colored
            # blocks and is insensitive to block size by design.
            times[bs] = time_app(
                "airfoil", "vectorized", "two_level", {"batch": "chunk"},
                mesh=mesh, steps=2, block_size=bs,
            )
            t.add(**{"block size": bs, "s/step": round(times[bs], 4)})
        t.note("Per-block dispatch overhead dominates at tiny blocks; "
               "vectorized chunks amortize it as blocks grow. (Chunked "
               "path — the whole-color batch path is block-size "
               "insensitive.)")
        save_and_print(t, "ablation_block_size", results_dir)
        assert times[16] > times[256] * 1.2


class TestLayoutAblation:
    """AoS vs SoA gathers: the paper transposes GPU data to SoA so
    lockstep lanes read contiguously. The NumPy analogue: gathering rows
    of an (n, 4) AoS array vs gathering from 4 contiguous SoA columns."""

    @pytest.mark.parametrize("layout", ["aos", "soa"])
    def test_gather_layout(self, benchmark, layout):
        rng = np.random.default_rng(0)
        n, m = 200_000, 50_000
        idx = rng.integers(0, n, m)
        aos = rng.random((n, 4))
        soa = np.ascontiguousarray(aos.T)

        benchmark.group = "ablation-gather-layout"
        if layout == "aos":
            benchmark(lambda: aos[idx])
        else:
            benchmark(lambda: (soa[0][idx], soa[1][idx],
                               soa[2][idx], soa[3][idx]))

    def test_soa_roundtrip_preserves_data(self, benchmark):
        from repro.core import Dat, Set

        d = Dat(Set(100), 4, np.random.default_rng(1).random((100, 4)))
        before = d.data.copy()
        benchmark.group = "ablation-gather-layout"
        soa = benchmark(d.soa)
        d.from_soa(soa)
        np.testing.assert_array_equal(d.data, before)


class TestRenumberingAblation:
    """Base-numbering locality (Section 3's premise that contiguous
    blocks are geometrically compact): a scrambled mesh destroys it,
    RCM restores it; plan quality (block color count) tracks it."""

    def test_scrambled_vs_sorted_plan_quality(self, benchmark, results_dir):
        from repro.bench.harness import ReportTable
        from repro.mesh import permute_set_numbering

        base = make_airfoil_mesh(32, 16)
        bad = scramble(base, "edges", seed=5)
        # Restore locality: renumber edges by their lowest adjacent cell
        # (the ordering the generator produces naturally).
        order = np.argsort(bad.map("edge2cell").values.min(axis=1),
                           kind="stable")
        new_of_old = np.empty(bad.edges.size, dtype=np.int64)
        new_of_old[order] = np.arange(bad.edges.size)
        good = permute_set_numbering(bad, "edges", new_of_old)

        def count_colors(m):
            sim = AirfoilSim(m, runtime=Runtime("vectorized",
                                                block_size=128))
            set_, *args = sim._loop_args()["res_calc"]
            plan = build_plan(set_, args, block_size=128)
            return plan.n_block_colors, int(plan.block_ncolors.max())

        benchmark.group = "ablation-renumbering"
        colors = {}
        for label, m in (("original", base), ("scrambled", bad),
                         ("sorted", good)):
            colors[label] = count_colors(m)
        benchmark.pedantic(lambda: count_colors(base), rounds=1,
                           iterations=1)

        t = ReportTable("Ablation: edge numbering vs coloring quality")
        for label, (bc, ec) in colors.items():
            t.add(numbering=label,
                  **{"res_calc block colors": bc,
                     "max elem colors/block": ec})
        t.note("Scrambling the edge numbering makes blocks span the "
               "whole mesh, inflating block conflicts and within-block "
               "serialization; sorting by adjacent cell restores both "
               "(the locality premise of OP2's mini-partitions).")
        save_and_print(t, "ablation_renumbering", results_dir)
        assert colors["scrambled"][0] > colors["original"][0]
        assert colors["sorted"][0] <= colors["scrambled"][0]

    def test_rcm_on_cells_reduces_map_bandwidth(self, benchmark):
        from repro.mesh import bandwidth

        bad = scramble(make_airfoil_mesh(24, 12), "cells", seed=2)
        benchmark.group = "ablation-renumbering"
        good = benchmark.pedantic(rcm_renumber_cells, args=(bad,),
                                  rounds=1, iterations=1)
        assert bandwidth(good.map("edge2cell").values) < bandwidth(
            bad.map("edge2cell").values
        )


class TestLoopChainAblation:
    """Deferred chained execution vs eager dispatch, warm caches.

    The acceptance artifact of the loop-chain redesign
    (``ablation_loop_chain.json``): a warm chained airfoil step must be
    measurably faster than warm eager execution on the vectorized
    backend, while staying bitwise identical (tests/test_chain.py).
    """

    def test_chained_vs_eager_warm(self, benchmark, results_dir):
        from repro.bench.measured import loop_chain_ablation

        benchmark.group = "ablation-loop-chain"
        t = benchmark.pedantic(
            loop_chain_ablation, kwargs={"steps": 10},
            rounds=1, iterations=1,
        )
        save_and_print(t, "ablation_loop_chain", results_dir)
        vec_rows = [
            r for r in t.rows
            if r["app"] == "airfoil" and "vectorized" in r["Backend"]
        ]
        assert vec_rows
        # The headline claim (ISSUE 2 acceptance): a warm chained step
        # is >= 1.2x eager on the vectorized backend.
        assert max(r["chained speedup"] for r in vec_rows) >= 1.2


class TestHaloScalingAblation:
    """Halo volume growth with rank count — the surface-to-volume law
    behind the paper's Phi small-problem sensitivity."""

    def test_halo_volume_vs_ranks(self, benchmark, results_dir):
        from repro.apps.airfoil import DistributedAirfoilSim
        from repro.bench.harness import ReportTable

        t = ReportTable("Ablation: halo size and traffic vs rank count")
        volumes = {}
        for nranks in (2, 4, 8):
            m = make_airfoil_mesh(32, 16)
            parts = rcb_partition(m.cell_centroids(), nranks)
            dist = DistributedAirfoilSim(m, parts, nranks, block_size=128)
            dist.run(2)
            halo_elems = sum(
                plan.total_halo_elements()
                for plan in dist.ctx.halo_plans.values()
            )
            volumes[nranks] = halo_elems
            t.add(
                ranks=nranks,
                **{"halo elements": halo_elems,
                   "messages/2 iters": dist.ctx.comm.stats.messages,
                   "KiB/2 iters":
                       round(dist.ctx.comm.stats.bytes / 1024, 1)},
            )
        t.note("Halo volume grows with the part surface area; per-rank "
               "work shrinks linearly — the ratio drives the MPI-wait "
               "fraction of the performance model.")
        save_and_print(t, "ablation_halo_scaling", results_dir)
        benchmark.group = "ablation-halo"
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert volumes[8] > volumes[2]
