"""Benchmarks regenerating Tables I-IV (specs, kernel properties, meshes).

These tables derive from specifications and the OP2-style API itself;
the assertions check our derived values against the published ones.
"""

import pytest

from repro.bench.tables import table1, table2, table3, table4
from repro.bench import paper_data

from conftest import save_and_print


class TestTable1:
    def test_table1_machines(self, run_once, results_dir):
        t = run_once(table1)
        save_and_print(t, "table1", results_dir)
        assert len(t.rows) == 4
        phi = t.row_for("System", "Xeon Phi")
        assert phi["Stream BW (GB/s)"] == 171.0
        k40 = t.row_for("System", "K40")
        assert k40["Cores"] == 2880


class TestTable2:
    def test_table2_airfoil_kernels(self, run_once, results_dir):
        t = run_once(table2)
        save_and_print(t, "table2", results_dir)
        # Transfer counts derived from the API must match the paper
        # exactly — they are the same accounting.
        for row in t.rows:
            name = row["Kernel"]
            pap = paper_data.TABLE2_AIRFOIL[name]
            assert row["DirRd"] == pap[0], name
            assert row["DirWr"] == pap[1], name
            assert row["IndRd"] == pap[2], name
            assert row["IndWr"] == pap[3], name
            assert row["FLOP"] == pap[4], name
            # FLOP/byte within rounding of the paper's figure.
            assert row["F/B"] == pytest.approx(pap[5], abs=0.12), name


class TestTable3:
    def test_table3_volna_kernels(self, run_once, results_dir):
        t = run_once(table3)
        save_and_print(t, "table3", results_dir)
        for row in t.rows:
            name = row["Kernel"]
            pap = paper_data.TABLE3_VOLNA[name]
            # Volna is a reimplementation from the paper's description:
            # totals must land close, signatures need not be identical.
            ours = row["DirRd"] + row["DirWr"] + row["IndRd"] + row["IndWr"]
            theirs = sum(pap[:4])
            # space_disc carries +8 values: our well-balanced bed-slope
            # correction rereads both cell states (EXPERIMENTS.md S3).
            budget = 8 if name == "space_disc" else 6
            assert abs(ours - theirs) <= budget, name
            assert row["FLOP"] == pap[4], name
        flux = t.row_for("Kernel", "compute_flux")
        assert flux["IndRd"] == 8  # gathers both cell states


class TestTable4:
    def test_table4_meshes(self, run_once, results_dir):
        t = run_once(table4)
        save_and_print(t, "table4", results_dir)
        for row in t.rows:
            for col in ("cells", "nodes", "edges"):
                ours = row[col]
                paper = row[f"paper {col}"]
                assert abs(ours - paper) / paper < 0.002, (row["Mesh"], col)
            # Data-only footprint sits just below the paper figure
            # (which includes an int32 connectivity map).
            assert row["data MB"] < row["paper MB"] <= row["data MB"] * 1.35
