"""Benchmarks regenerating Figures 5-9 (modelled runtime comparisons).

Each figure's assertions encode the qualitative claims the paper draws
from it — who wins, by roughly what factor, where the crossovers fall.
"""

from repro.bench import paper_data
from repro.bench.figures import (
    FIG8B_BLOCK_SIZES,
    FIG8B_COMBOS,
    figure5,
    figure6,
    figure7,
    figure8a,
    figure8b,
    figure9,
)

from conftest import save_and_print


def _case(fig, series, case):
    return fig.series[series][list(fig.x).index(case)]


class TestFigure5:
    def test_fig5_baseline(self, run_once, results_dir):
        f = run_once(figure5)
        save_and_print(f, "figure5", results_dir)
        for case in f.x:
            # K40 fastest baseline on every case.
            k40 = _case(f, "K40", case)
            for s in ("CPU 1 MPI", "CPU 1 OpenMP", "CPU 2 MPI"):
                assert k40 < _case(f, s, case)
            # CPU 2 meaningfully faster than CPU 1.
            assert _case(f, "CPU 2 MPI", case) < 0.75 * _case(
                f, "CPU 1 MPI", case
            )
            # Pure MPI <= hybrid OpenMP on CPUs (threading overheads).
            assert _case(f, "CPU 1 MPI", case) <= 1.05 * _case(
                f, "CPU 1 OpenMP", case
            )
        # DP costs more than SP but (scalar) less than 2x — Section 6.2's
        # evidence that scalar code is not bandwidth-limited everywhere.
        sp = _case(f, "CPU 1 MPI", "Airfoil Single")
        dp = _case(f, "CPU 1 MPI", "Airfoil Double")
        assert 1.2 < dp / sp < 1.9


class TestFigure6:
    def test_fig6_cpu_vectorization(self, run_once, results_dir):
        f = run_once(figure6)
        save_and_print(f, "figure6", results_dir)
        for mach in ("CPU1", "CPU2"):
            sp, dp = f"{mach} Airfoil SP", f"{mach} Airfoil DP"
            s_sp = _case(f, "MPI", sp) / _case(f, "MPI vectorized", sp)
            s_dp = _case(f, "MPI", dp) / _case(f, "MPI vectorized", dp)
            lo, hi = paper_data.CPU_VEC_SPEEDUP_SP
            assert lo - 0.15 <= s_sp <= hi + 0.25, (mach, s_sp)
            lo, hi = paper_data.CPU_VEC_SPEEDUP_DP
            assert lo - 0.1 <= s_dp <= hi + 0.1, (mach, s_dp)
            # SP gains much more than DP (fixed register width).
            assert s_sp > s_dp
            # Pure MPI beats hybrid (paper: "with one exception").
            assert _case(f, "MPI vectorized", sp) <= 1.05 * _case(
                f, "OpenMP vectorized", sp
            )
            # OpenCL lands near plain OpenMP.
            ratio = _case(f, "OpenCL", dp) / _case(f, "OpenMP", dp)
            assert 0.7 <= ratio <= 1.4, (mach, ratio)


class TestFigure7:
    def test_fig7_phi(self, run_once, results_dir):
        f = run_once(figure7)
        save_and_print(f, "figure7", results_dir)
        scal, intr = "Scalar MPI+OpenMP", "Vectorized MPI+OpenMP"
        s_sp = _case(f, scal, "Airfoil Single") / _case(f, intr,
                                                        "Airfoil Single")
        s_dp = _case(f, scal, "Airfoil Double") / _case(f, intr,
                                                        "Airfoil Double")
        lo, hi = paper_data.PHI_VEC_SPEEDUP_SP
        assert lo - 0.2 <= s_sp <= hi + 0.3, s_sp
        lo, hi = paper_data.PHI_VEC_SPEEDUP_DP
        assert lo - 0.2 <= s_dp <= hi + 0.3, s_dp
        for case in f.x:
            # Auto-vectorization fails: worse than scalar overall.
            assert _case(f, "Auto-vectorized MPI+OpenMP", case) > _case(
                f, scal, case
            )
            # OpenCL between scalar and intrinsics.
            assert _case(f, intr, case) < _case(f, "OpenCL", case)
            # Hybrid beats pure MPI on the Phi (>120 ranks overhead).
            assert _case(f, intr, case) < _case(f, "Vectorized MPI", case)


class TestFigure8a:
    def test_fig8a_coloring(self, run_once, results_dir):
        f = run_once(figure8a)
        save_and_print(f, "figure8a", results_dir)
        orig, full, block = f.x
        for series in f.series:
            vals = dict(zip(f.x, f.series[series]))
            # The original two-level coloring wins everywhere.
            assert vals[orig] < vals[full] and vals[orig] < vals[block]
        for dt in ("Single", "Double"):
            k40 = dict(zip(f.x, f.series[f"K40 {dt}"]))
            phi = dict(zip(f.x, f.series[f"Phi {dt}"]))
            # K40's tiny cache: full permute beats block permute;
            # the Phi's 30MB cache: block permute beats full permute.
            assert k40[full] < k40[block]
            assert phi[block] < phi[full]


class TestFigure8b:
    def test_fig8b_tuning(self, run_once, results_dir):
        f = run_once(figure8b)
        save_and_print(f, "figure8b", results_dir)
        surface = {
            (combo, bs): f.series[f"block={bs}"][i]
            for i, combo in enumerate(FIG8B_COMBOS)
            for bs in FIG8B_BLOCK_SIZES
        }
        best_combo, best_bs = min(surface, key=surface.get)
        # Optimum at a middling split, not at either extreme.
        assert best_combo not in ("1x240", "60x4")
        # Preferred block size grows with the process count.
        def best_block(combo):
            return min(FIG8B_BLOCK_SIZES,
                       key=lambda bs: surface[(combo, bs)])
        assert best_block("1x240") <= best_block("12x20") <= best_block(
            "60x4"
        )
        # Total spread matches the paper's 25-40s range shape (~1.5x).
        vals = list(surface.values())
        assert 1.15 < max(vals) / min(vals) < 2.0


class TestFigure9:
    def test_fig9_best(self, run_once, results_dir):
        f = run_once(figure9)
        save_and_print(f, "figure9", results_dir)
        for case in f.x:
            cpu1 = _case(f, "CPU 1", case)
            cpu2 = _case(f, "CPU 2", case)
            phi = _case(f, "Xeon Phi", case)
            k40 = _case(f, "K40", case)
            # K40 2.5-3x CPU 1 (give the band some slack).
            assert 2.2 <= cpu1 / k40 <= 3.4, (case, cpu1 / k40)
            # Phi comparable to the mid-range dual-socket CPU 1.
            assert 0.75 <= cpu1 / phi <= 1.35, (case, cpu1 / phi)
            # CPU 2 is 40-80% faster than CPU 1.
            assert 1.3 <= cpu1 / cpu2 <= 1.9, (case, cpu1 / cpu2)
            # K40 ~2.5x the Phi.
            assert 1.9 <= phi / k40 <= 3.4, (case, phi / k40)
