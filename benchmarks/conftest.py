"""Shared benchmark fixtures: artifact saving and one-shot benchmarking.

Every benchmark regenerates one table/figure of the paper.  Generation
is deterministic model evaluation, so each runs once per benchmark
(rounds=1) and the artifact is persisted under ``bench_results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS.mkdir(exist_ok=True)
    return RESULTS


@pytest.fixture
def run_once(benchmark):
    """Benchmark a generator exactly once and return its artifact."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return _run


def save_and_print(artifact, name: str, results_dir: Path) -> None:
    text = artifact.render()
    artifact.save(name, results_dir)
    print("\n" + text)
