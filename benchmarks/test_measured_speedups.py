"""Measured wall-clock benchmarks of this library's backends.

pytest-benchmark times real solver steps per backend on scaled meshes.
The batched-NumPy (vectorized) backend standing ~an order of magnitude
above the element-at-a-time scalar backend is the live counterpart of
the paper's intrinsics-vs-scalar result (DESIGN.md S3 substitution).
"""

import numpy as np
import pytest

from repro.apps.airfoil import AirfoilSim
from repro.apps.volna import VolnaSim
from repro.core import Runtime, make_backend
from repro.mesh import make_airfoil_mesh, make_tri_mesh

#: (label, backend, scheme, options) — the measured strategy matrix.
STRATEGIES = [
    ("scalar", "sequential", "two_level", {}),
    ("codegen_stub", "codegen", "two_level", {}),
    ("openmp_colored", "openmp", "two_level", {}),
    ("simt", "simt", "two_level", {"device": "cpu"}),
    ("vectorized", "vectorized", "two_level", {}),
    ("vectorized_full_permute", "vectorized", "full_permute", {}),
    ("vectorized_block_permute", "vectorized", "block_permute", {}),
]

_timings = {}


@pytest.fixture(scope="module")
def airfoil_mesh():
    return make_airfoil_mesh(48, 24)


@pytest.fixture(scope="module")
def volna_mesh():
    return make_tri_mesh(28, 21, 100_000.0, 75_000.0)


@pytest.mark.parametrize("label,backend,scheme,options", STRATEGIES)
def test_airfoil_step(benchmark, airfoil_mesh, label, backend, scheme,
                      options):
    rt = Runtime(backend=make_backend(backend, **options),
                 scheme=scheme, block_size=256)
    sim = AirfoilSim(airfoil_mesh, runtime=rt)
    sim.step()  # warm up plan caches
    benchmark.group = "airfoil-step"
    benchmark(sim.step)
    _timings[("airfoil", label)] = benchmark.stats.stats.mean


@pytest.mark.parametrize("label,backend,scheme,options", STRATEGIES)
def test_volna_step(benchmark, volna_mesh, label, backend, scheme, options):
    rt = Runtime(backend=make_backend(backend, **options),
                 scheme=scheme, block_size=256)
    sim = VolnaSim(volna_mesh, dtype=np.float64, runtime=rt)
    sim.step()
    benchmark.group = "volna-step"
    benchmark(sim.step)
    _timings[("volna", label)] = benchmark.stats.stats.mean


@pytest.mark.parametrize("vec", [4, 8, 16, None])
def test_airfoil_vector_width(benchmark, airfoil_mesh, vec):
    """Fixed vector widths model the register faithfully; wider is faster
    in Python just as on hardware (amortized per-instruction cost)."""
    rt = Runtime(backend=make_backend("vectorized", vec=vec),
                 block_size=256)
    sim = AirfoilSim(airfoil_mesh, runtime=rt)
    sim.step()
    benchmark.group = "airfoil-vector-width"
    benchmark(sim.step)
    _timings[("airfoil-vec", vec)] = benchmark.stats.stats.mean


def test_zz_vectorization_speedup_summary(benchmark, results_dir):
    """Aggregate: the vectorized backend must decisively beat scalar."""
    if ("airfoil", "scalar") not in _timings:
        pytest.skip("run together with the per-backend benchmarks")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep the
    # summary inside --benchmark-only runs (fixture presence gates them)
    from repro.bench.harness import ReportTable

    t = ReportTable("Measured backend step times (this machine)")
    for (app, label), mean in sorted(_timings.items(), key=str):
        base = _timings.get((app, "scalar"))
        t.add(App=app, Backend=str(label),
              **{"s/step": round(mean, 4),
                 "speedup vs scalar": round(base / mean, 1) if base else ""})
    t.save("measured_speedups", results_dir)
    print("\n" + t.render())

    for app in ("airfoil", "volna"):
        scalar = _timings[(app, "scalar")]
        vec = _timings[(app, "vectorized")]
        # Python's scalar/batched gap is far larger than C's 2x.
        assert vec < scalar / 3.0, (app, scalar, vec)
    # Wider fixed vectors are faster, and unbounded is fastest.
    assert _timings[("airfoil-vec", 16)] < _timings[("airfoil-vec", 4)]
    assert _timings[("airfoil-vec", None)] <= _timings[("airfoil-vec", 16)]
