#!/usr/bin/env python3
"""Airfoil: the paper's CFD benchmark, end to end.

Generates an O-mesh around an airfoil-like body, runs the non-linear
inviscid solver (save_soln / adt_calc / res_calc / bres_calc / update),
reports residual convergence, and compares backend wall-clocks — the
live counterpart of the paper's scalar-vs-vectorized experiment.

Run:  python examples/airfoil_simulation.py [ni] [nj] [iters]
"""

import _bootstrap  # noqa: F401  (sys.path setup for source checkouts)

import sys
import time

import numpy as np

from repro.apps.airfoil import AirfoilSim
from repro.core import Runtime
from repro.mesh import make_airfoil_mesh


def main() -> None:
    ni = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    nj = int(sys.argv[2]) if len(sys.argv) > 2 else 30
    iters = int(sys.argv[3]) if len(sys.argv) > 3 else 50

    mesh = make_airfoil_mesh(ni, nj)
    print(f"mesh: {mesh.summary()}")

    # --- convergence run under the auto-tuned runtime ----------------
    # backend="auto" probes the candidate configurations once, persists
    # the winner in ~/.cache/repro_tune, and replays it on later runs.
    sim = AirfoilSim(mesh, runtime=Runtime("auto", block_size=256))
    print(f"\nfree stream: q_inf = {sim.constants.qinf().round(4)}")
    print(f"{'iter':>6s} {'RMS residual':>14s}")
    for it in range(1, iters + 1):
        rms = sim.step()
        if it % max(1, iters // 10) == 0 or it == 1:
            print(f"{it:6d} {rms:14.6e}")
    drop = sim.rms_history[0] / sim.rms_history[-1]
    print(f"residual dropped {drop:.1f}x over {iters} iterations")

    # --- lift indicator: pressure asymmetry from angle of attack -----
    q = sim.q
    gm1 = sim.constants.gm1
    p = gm1 * (q[:, 3] - 0.5 * (q[:, 1] ** 2 + q[:, 2] ** 2) / q[:, 0])
    cent = mesh.cell_centroids()
    wall = np.hypot(cent[:, 0], cent[:, 1]) < 1.0
    upper = wall & (cent[:, 1] > 0)
    lower = wall & (cent[:, 1] < 0)
    print(
        f"near-body pressure, upper {p[upper].mean():.4f} vs lower "
        f"{p[lower].mean():.4f}  (lower > upper -> lift, alpha = "
        f"{sim.constants.alpha_deg} deg)"
    )

    # --- backend comparison (the paper's core experiment) ------------
    print("\nper-step wall-clock by backend (3 steps each):")
    timings = {}
    for label, backend in [
        ("scalar (sequential)", "sequential"),
        ("SIMT (OpenCL analogue)", "simt"),
        ("vectorized (intrinsics analogue)", "vectorized"),
    ]:
        s = AirfoilSim(mesh, runtime=Runtime(backend, block_size=256))
        s.step()  # warm-up: plans get built and cached
        t0 = time.perf_counter()
        s.run(3)
        timings[label] = (time.perf_counter() - t0) / 3
        print(f"  {label:34s} {timings[label] * 1e3:9.2f} ms/step")
    speedup = timings["scalar (sequential)"] / timings[
        "vectorized (intrinsics analogue)"
    ]
    print(f"\nvectorized speedup over scalar: {speedup:.1f}x "
          "(the Python analogue of the paper's ~2x intrinsics result)")


if __name__ == "__main__":
    main()
