#!/usr/bin/env python3
"""Explicit SIMD programming with VecReg — the paper's Fig 3b by hand.

Walks through the exact gather / vector-compute / serialized-scatter
pipeline the OP2 code generator emits for AVX/IMCI, using the VecReg
register emulation: indirection indices load into integer vectors,
indirect data gathers into packed registers, arithmetic runs on whole
registers, a branch becomes select(), and increments scatter out
serialized.  A scalar loop validates every step.

Run:  python examples/vector_registers.py
"""

import _bootstrap  # noqa: F401  (sys.path setup for source checkouts)

import numpy as np

from repro.simd import IntVec, VecReg, select, vector_width, vsqrt

VEC = vector_width("avx", np.float64)  # 4 doubles per 256-bit register
N_EDGES = 10
N_NODES = 10

rng = np.random.default_rng(3)
edge2node = np.stack(
    [np.arange(N_EDGES), (np.arange(N_EDGES) + 1) % N_NODES], axis=1
)
weights = rng.random(N_EDGES)
values = rng.random(N_NODES) + 0.5


def scalar_reference():
    """The user kernel as plain per-element code (with a branch)."""
    acc = np.zeros(N_NODES)
    for e in range(N_EDGES):
        n0, n1 = edge2node[e]
        v = np.sqrt(values[n0] * values[n1])
        f = weights[e] * v if v > 1.0 else -weights[e] * v
        acc[n0] += f
        acc[n1] -= f
    return acc


def vectorized():
    """The same kernel, written the way the paper's generator emits it."""
    acc = np.zeros(N_NODES)
    main = (N_EDGES // VEC) * VEC

    for base in range(0, main, VEC):
        # -- load indirection indices into integer vectors ------------
        idx0 = IntVec.load(edge2node[:, 0], base, VEC)
        idx1 = IntVec.load(edge2node[:, 1], base, VEC)

        # -- gather indirect data into packed registers ----------------
        v0 = VecReg.gather(values, idx0)
        v1 = VecReg.gather(values, idx1)
        w = VecReg.load(weights, base, VEC)  # aligned direct load

        # -- vector arithmetic; the branch becomes select() ------------
        v = vsqrt(v0 * v1)
        f = select(v > 1.0, w * v, -w * v)

        # -- serialized scatter of increments (np.add.at semantics) ----
        f.scatter_add(acc, idx0)
        (-f).scatter_add(acc, idx1)

    # -- scalar post-sweep for the remainder (ranges rarely divide VEC)
    for e in range(main, N_EDGES):
        n0, n1 = edge2node[e]
        v = np.sqrt(values[n0] * values[n1])
        f = weights[e] * v if v > 1.0 else -weights[e] * v
        acc[n0] += f
        acc[n1] -= f
    return acc


if __name__ == "__main__":
    ref = scalar_reference()
    got = vectorized()
    print(f"vector width: {VEC} doubles (AVX)")
    print(f"scalar    : {ref.round(5)}")
    print(f"vectorized: {got.round(5)}")
    assert np.allclose(ref, got)
    print("\npipeline stages exercised: indexed load -> mapped gather -> "
          "register arithmetic -> select() -> serialized scatter-add -> "
          "scalar remainder sweep")

    # Bonus: masked stores, the other IMCI facility the paper leans on.
    buf = np.zeros(VEC)
    reg = VecReg(np.arange(1.0, VEC + 1))
    mask = reg > 2.0
    reg.store_masked(buf, 0, mask)
    print(f"masked store of {reg.lanes} where >2: {buf}")
