#!/usr/bin/env python3
"""Distributed Airfoil over the simulated-MPI substrate.

Partitions the mesh with recursive coordinate bisection, builds OP2-style
exec/non-exec halos, runs the solver owner-compute with redundant halo
execution, and verifies the distributed answer equals the serial one —
then reports the communication statistics the paper's Section 6.5
analyses (message counts, halo volumes, load imbalance).

Run:  python examples/distributed_mpi.py [nranks]
"""

import _bootstrap  # noqa: F401  (sys.path setup for source checkouts)

import sys

import numpy as np

from repro.apps.airfoil import AirfoilSim, DistributedAirfoilSim
from repro.core import Runtime
from repro.mesh import make_airfoil_mesh
from repro.partition import (
    adjacency_from_map,
    evaluate_partition,
    rcb_partition,
)


def main() -> None:
    nranks = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    iters = 5

    mesh = make_airfoil_mesh(32, 16)
    print(f"mesh: {mesh.summary()}, ranks: {nranks}")

    # --- partition quality -------------------------------------------
    cell_parts = rcb_partition(mesh.cell_centroids(), nranks)
    adj = adjacency_from_map(
        mesh.map("cell2node").values, mesh.cells.size, mesh.nodes.size
    )
    quality = evaluate_partition(adj, cell_parts, nranks)
    print(f"partition: {quality}")

    # --- serial reference ----------------------------------------------
    # Auto-tuned serial reference (bitwise identical to every backend).
    serial = AirfoilSim(mesh, runtime=Runtime("auto", block_size=128))
    serial.run(iters)

    # --- distributed run -------------------------------------------------
    mesh2 = make_airfoil_mesh(32, 16)
    parts2 = rcb_partition(mesh2.cell_centroids(), nranks)
    dist = DistributedAirfoilSim(mesh2, parts2, nranks, block_size=128)
    dist.run(iters)

    err = np.abs(dist.fetch_q() - serial.q).max()
    print(f"\nmax |q_dist - q_serial| after {iters} iterations: {err:.3e}")
    assert err < 1e-9

    # --- halo and communication statistics ------------------------------
    ctx = dist.ctx
    print("\nper-set halo layout (rank 0):")
    for gset, plans in ctx.halo_plans.items():
        reg = plans.regions[0]
        print(
            f"  {gset.name:7s} owned={reg.n_owned:5d} (core "
            f"{reg.core_size:5d})  exec halo={reg.n_exec:4d}  "
            f"non-exec halo={reg.n_nonexec:4d}"
        )
    stats = ctx.comm.stats
    print(
        f"\ncommunication over {iters} iterations: {stats.messages} "
        f"messages, {stats.bytes / 1024:.1f} KiB halo traffic, "
        f"{stats.reductions} allreduces"
    )
    print(f"neighbour counts: {ctx.comm.neighbour_counts()}")
    print(f"cell load imbalance: {ctx.load_imbalance(mesh2.cells):.2%}")


if __name__ == "__main__":
    main()
