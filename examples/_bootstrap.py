"""Make ``python examples/<name>.py`` work from a source checkout.

Examples import :mod:`repro`; in an installed environment that just
works, but running straight from a clone the package lives under
``src/``.  Importing this module (the first line of every example)
prepends that directory to ``sys.path`` when — and only when — it
exists and ``repro`` is not already importable.
"""

import importlib.util
import sys
from pathlib import Path

if importlib.util.find_spec("repro") is None:
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir():
        sys.path.insert(0, str(_src))
