#!/usr/bin/env python3
"""Performance study: the paper's evaluation in one script.

Uses the calibrated performance model to reproduce the cross-platform
story (Figures 5-9), prints the headline speedups next to the paper's
claims, and finishes with real wall-clock measurements of this library's
backends on a scaled mesh.

Run:  python examples/performance_study.py
"""

import _bootstrap  # noqa: F401  (sys.path setup for source checkouts)

import numpy as np

from repro.bench.measured import (
    batch_ablation,
    cache_ablation,
    layout_ablation,
    measured_speedups,
)
from repro.mesh import make_airfoil_mesh
from repro.perfmodel import (
    AUTOVEC_OPENMP,
    CUDA,
    MACHINES,
    OPENCL,
    SCALAR_MPI,
    SCALAR_OPENMP,
    VEC_MPI,
    VEC_OPENMP,
    airfoil_workload,
    predict_app,
)


def main() -> None:
    wl = airfoil_workload("large")

    print("=" * 68)
    print("Modelled Airfoil totals (2.8M cells, 1000 iterations)")
    print("=" * 68)
    rows = [
        ("CPU 1", SCALAR_MPI, "scalar MPI"),
        ("CPU 1", VEC_MPI, "vectorized MPI"),
        ("CPU 2", SCALAR_MPI, "scalar MPI"),
        ("CPU 2", VEC_MPI, "vectorized MPI"),
        ("Xeon Phi", SCALAR_OPENMP, "scalar MPI+OpenMP"),
        ("Xeon Phi", AUTOVEC_OPENMP, "auto-vectorized"),
        ("Xeon Phi", OPENCL, "OpenCL"),
        ("Xeon Phi", VEC_OPENMP, "vectorized MPI+OpenMP"),
        ("K40", CUDA, "CUDA"),
    ]
    print(f"{'machine':10s} {'strategy':24s} {'SP (s)':>8s} {'DP (s)':>8s}")
    for mname, cfg, label in rows:
        m = MACHINES[mname]
        sp = predict_app(wl, m, cfg, np.float32).total_s
        dp = predict_app(wl, m, cfg, np.float64).total_s
        print(f"{mname:10s} {label:24s} {sp:8.1f} {dp:8.1f}")

    print("\nHeadline claims vs model:")
    cpu1 = MACHINES["CPU 1"]
    phi = MACHINES["Xeon Phi"]
    claims = [
        ("CPU vectorization speedup, SP (paper 1.6-2.0x)",
         predict_app(wl, cpu1, SCALAR_MPI, np.float32).total_s
         / predict_app(wl, cpu1, VEC_MPI, np.float32).total_s),
        ("CPU vectorization speedup, DP (paper 1.1-1.4x)",
         predict_app(wl, cpu1, SCALAR_MPI, np.float64).total_s
         / predict_app(wl, cpu1, VEC_MPI, np.float64).total_s),
        ("Phi vectorization speedup, SP (paper 2.0-2.2x)",
         predict_app(wl, phi, SCALAR_OPENMP, np.float32).total_s
         / predict_app(wl, phi, VEC_OPENMP, np.float32).total_s),
        ("K40 over CPU 1, DP (paper 2.5-3x)",
         predict_app(wl, cpu1, VEC_MPI, np.float64).total_s
         / predict_app(wl, MACHINES["K40"], CUDA, np.float64).total_s),
        ("K40 over Phi, DP (paper ~2.5x)",
         predict_app(wl, phi, VEC_OPENMP, np.float64).total_s
         / predict_app(wl, MACHINES["K40"], CUDA, np.float64).total_s),
    ]
    for label, value in claims:
        print(f"  {label:50s} -> {value:.2f}x")

    print("\nPer-kernel bottlenecks on CPU 1 (scalar -> vectorized):")
    scalar = predict_app(wl, cpu1, SCALAR_MPI, np.float64)
    vec = predict_app(wl, cpu1, VEC_MPI, np.float64)
    for name in ("save_soln", "adt_calc", "res_calc", "update"):
        s, v = scalar.kernels[name], vec.kernels[name]
        print(f"  {name:10s} {s.bound:9s} -> {v.bound:9s}  "
              f"({s.time_s:5.1f}s -> {v.time_s:5.1f}s)")

    print("\n" + "=" * 68)
    print("Measured on THIS machine (scaled mesh, real backends)")
    print("=" * 68)
    table = measured_speedups("airfoil", steps=2)
    print(table.render())

    print("=" * 68)
    print("Execution-engine knobs, measured (layout / batching / caching)")
    print("=" * 68)
    # The three levers this library exposes on top of the paper's
    # pipeline: whole-color batched execution (vs per-chunk loops), the
    # Dat storage layout, and warm plan/gather-index caches.
    mesh = make_airfoil_mesh(64, 32)
    print(batch_ablation(mesh=mesh, steps=3).render())
    print(layout_ablation(mesh=mesh, steps=3).render())
    print(cache_ablation(mesh=mesh, steps=3).render())


if __name__ == "__main__":
    main()
