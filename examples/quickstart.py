#!/usr/bin/env python3
"""Quickstart: the OP2-style API in ~60 lines.

Builds a tiny unstructured problem (a ring of edges over nodes), declares
data and connectivity, and runs one indirect parallel loop — the
sparse-matrix-vector pattern of the paper's Fig 1b — on several backends,
showing they agree bit-for-bit-tolerantly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    INC,
    READ,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    kernel,
    par_loop,
)

# 1. Sets: the mesh is just named sizes.
N = 1000
nodes = Set(N, "nodes")
edges = Set(N, "edges")

# 2. Connectivity: each edge links node i to node i+1 (a ring).
conn = np.stack([np.arange(N), (np.arange(N) + 1) % N], axis=1)
edge2node = Map(edges, nodes, 2, conn, "edge2node")

# 3. Data on sets.
rng = np.random.default_rng(7)
weights = Dat(edges, 1, rng.random(N), name="weights")
result = Dat(nodes, 1, name="result")


# 4. An elementary kernel: scalar form (per element) and vector form
#    (per batch of elements) — the paper's user kernel + intrinsics pair.
@kernel("spmv_edge", flops=4, description="SpMV over edges")
def spmv_edge(w, r0, r1):
    r0[0] += w[0]
    r1[0] += 2.0 * w[0]


@spmv_edge.vectorized
def spmv_edge_vec(w, r0, r1):
    r0[:, 0] += w[:, 0]
    r1[:, 0] += 2.0 * w[:, 0]


def run(backend: str, scheme: str = "two_level") -> np.ndarray:
    result.zero()
    rt = Runtime(backend=backend, scheme=scheme, block_size=128)
    # 5. The parallel loop: accesses declared, races handled for you.
    par_loop(
        spmv_edge, edges,
        arg_dat(weights, -1, None, READ),   # direct read
        arg_dat(result, 0, edge2node, INC),  # indirect increment, slot 0
        arg_dat(result, 1, edge2node, INC),  # indirect increment, slot 1
        runtime=rt,
    )
    return result.data.copy()


if __name__ == "__main__":
    reference = run("sequential")
    print(f"sequential   result[:4] = {reference[:4].ravel().round(4)}")
    for backend, scheme in [
        ("vectorized", "two_level"),
        ("vectorized", "full_permute"),
        ("simt", "two_level"),
        ("autovec", "block_permute"),
    ]:
        out = run(backend, scheme)
        ok = np.allclose(out, reference)
        print(f"{backend:11s} ({scheme:13s}) matches sequential: {ok}")
        assert ok
    print("\nAll backends agree — the coloring machinery made the "
          "indirect increments race-free on every execution strategy.")
