#!/usr/bin/env python3
"""Quickstart: the OP2-style API in ~80 lines — eager and chained.

Builds a tiny unstructured problem (a ring of edges over nodes), declares
data and connectivity, and runs one indirect parallel loop — the
sparse-matrix-vector pattern of the paper's Fig 1b — two ways:

1. **eager**: every ``par_loop`` dispatches immediately;
2. **chained** (deferred): ``with rt.chain():`` records the loops and
   flushes them as one pre-analyzed, fused, memoized schedule — the
   loop-chain execution model a steady-state time step wants;
3. **tiled**: ``with rt.chain(tiling=...):`` additionally runs the whole
   chain tile-by-tile (sparse tiling, ``repro/tiling``) so data written
   by one loop is still cache-hot when the next loop reads it.

All styles produce bitwise-identical results on every backend.

Run:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  (sys.path setup for source checkouts)

import numpy as np

from repro import (
    INC,
    READ,
    WRITE,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    kernel,
    par_loop,
)

# 1. Sets: the mesh is just named sizes.
N = 1000
nodes = Set(N, "nodes")
edges = Set(N, "edges")

# 2. Connectivity: each edge links node i to node i+1 (a ring).
conn = np.stack([np.arange(N), (np.arange(N) + 1) % N], axis=1)
edge2node = Map(edges, nodes, 2, conn, "edge2node")

# 3. Data on sets.
rng = np.random.default_rng(7)
weights = Dat(edges, 1, rng.random(N), name="weights")
result = Dat(nodes, 1, name="result")
scaled = Dat(edges, 1, name="scaled")


# 4. Elementary kernels: scalar form only — the batched (vectorized)
#    incarnation is *generated* from this source by the kernel compiler
#    (repro.kernelc), exactly as the paper's code generator derives the
#    intrinsics version from the user kernel.  Inspect the generated
#    code with `python -m repro.bench --dump-kernel <name>`.
@kernel("scale_edge", flops=1, description="direct scale")
def scale_edge(w, s):
    s[0] = 3.0 * w[0]


@kernel("spmv_edge", flops=4, description="SpMV over edges")
def spmv_edge(s, r0, r1):
    r0[0] += s[0]
    r1[0] += 2.0 * s[0]


def loops(rt):
    """The two-loop 'time step': a direct scale feeding an indirect SpMV."""
    par_loop(
        scale_edge, edges,
        arg_dat(weights, -1, None, READ),
        arg_dat(scaled, -1, None, WRITE),
        runtime=rt,
    )
    par_loop(
        spmv_edge, edges,
        arg_dat(scaled, -1, None, READ),     # direct read
        arg_dat(result, 0, edge2node, INC),  # indirect increment, slot 0
        arg_dat(result, 1, edge2node, INC),  # indirect increment, slot 1
        runtime=rt,
    )


def run_eager(backend: str, scheme: str = "two_level") -> np.ndarray:
    result.zero()
    rt = Runtime(backend=backend, scheme=scheme, block_size=128)
    loops(rt)
    return result.data.copy()


def run_chained(backend: str, scheme: str = "two_level") -> np.ndarray:
    result.zero()
    rt = Runtime(backend=backend, scheme=scheme, block_size=128)
    # 5. Deferred execution: the par_loops inside the block are *traced*,
    #    not run.  At exit the chain analyzes dependencies (the SpMV
    #    reads what the scale wrote), fuses what is provably safe, and
    #    replays a memoized schedule on every subsequent identical trace.
    with rt.chain():
        loops(rt)
    # (Reading result.data below is also a legal flush point: Dats carry
    # read barriers, so a chained program can never observe stale data.)
    return result.data.copy()


def run_tiled(backend: str, scheme: str = "two_level") -> np.ndarray:
    result.zero()
    rt = Runtime(backend=backend, scheme=scheme, block_size=128)
    # 6. Sparse tiling: the inspector splits the chain into seed tiles of
    #    the first loop, projects them through edge2node so the SpMV's
    #    slices respect every dependency, and the executor replays both
    #    loops tile-by-tile — cross-loop cache locality, same bits.
    with rt.chain(tiling=128):
        loops(rt)
    return result.data.copy()


if __name__ == "__main__":
    reference = run_eager("sequential")
    print(f"sequential   result[:4] = {reference[:4].ravel().round(4)}")
    for backend, scheme in [
        ("vectorized", "two_level"),
        ("vectorized", "full_permute"),
        ("simt", "two_level"),
        ("autovec", "block_permute"),
    ]:
        eager = run_eager(backend, scheme)
        chained = run_chained(backend, scheme)
        tiled = run_tiled(backend, scheme)
        ok = np.allclose(eager, reference)
        identical = np.array_equal(chained, eager)
        tiled_identical = np.array_equal(tiled, eager)
        print(
            f"{backend:11s} ({scheme:13s}) matches sequential: {ok}  "
            f"chained == eager bitwise: {identical}  "
            f"tiled == eager bitwise: {tiled_identical}"
        )
        assert ok and identical and tiled_identical
    print(
        "\nAll backends agree, and the deferred LoopChain execution is "
        "bitwise identical to eager dispatch — same coloring machinery, "
        "one pre-analyzed schedule per time step."
    )
