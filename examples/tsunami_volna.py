#!/usr/bin/env python3
"""Volna: shallow-water tsunami simulation on a synthetic coast.

A Gaussian hump of water (the tsunami source) is released over a 3 km
deep basin; the wave crosses the continental slope, shoals on the shelf,
and funnels into the bay channel — the flow regimes of the paper's
Vancouver-coast scenario.  Prints wave-front diagnostics and an ASCII
map of the free surface.

Run:  python examples/tsunami_volna.py [nx] [ny] [minutes]
"""

import _bootstrap  # noqa: F401  (sys.path setup for source checkouts)

import sys

import numpy as np

from repro.apps.volna import CoastalScenario, VolnaSim
from repro.core import Runtime
from repro.mesh import make_tri_mesh


def ascii_eta_map(sim: VolnaSim, cols: int = 64, rows: int = 20) -> str:
    """Coarse raster of the free-surface elevation."""
    scen = sim.scenario
    cent = sim.mesh.cell_centroids()
    eta = sim.q[:, 0] + sim.q[:, 3]
    gx = np.minimum((cent[:, 0] / scen.extent_x * cols).astype(int), cols - 1)
    gy = np.minimum((cent[:, 1] / scen.extent_y * rows).astype(int), rows - 1)
    acc = np.zeros((rows, cols))
    cnt = np.zeros((rows, cols))
    np.add.at(acc, (gy, gx), eta)
    np.add.at(cnt, (gy, gx), 1)
    avg = np.divide(acc, cnt, out=np.zeros_like(acc), where=cnt > 0)
    scale = max(1e-6, np.abs(avg).max())
    chars = " .:-=+*#%@"
    lines = []
    for r in range(rows - 1, -1, -1):
        line = ""
        for c in range(cols):
            level = int(min(abs(avg[r, c]) / scale, 0.999) * len(chars))
            ch = chars[level]
            line += ch.lower() if avg[r, c] >= 0 else "~"
        lines.append(line)
    return "\n".join(lines)


def main() -> None:
    nx = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    ny = int(sys.argv[2]) if len(sys.argv) > 2 else 36
    minutes = float(sys.argv[3]) if len(sys.argv) > 3 else 8.0

    scen = CoastalScenario()
    mesh = make_tri_mesh(nx, ny, scen.extent_x, scen.extent_y)
    sim = VolnaSim(mesh, dtype=np.float64,
                   runtime=Runtime("auto", block_size=256),
                   scenario=scen)
    print(f"mesh: {mesh.summary()}")
    print(f"source: {scen.source_amplitude} m hump, "
          f"{scen.source_radius / 1000:.0f} km radius, over "
          f"{scen.ocean_depth:.0f} m of water")
    c = np.sqrt(9.81 * scen.ocean_depth)
    print(f"deep-water wave speed sqrt(g*H) = {c:.0f} m/s\n")

    mass0 = sim.total_mass()
    cent = mesh.cell_centroids()
    coast = cent[:, 0] > 0.85 * scen.extent_x

    target = minutes * 60.0
    next_report = 0.0
    while sim.time < target:
        sim.step()
        if sim.time >= next_report:
            eta = sim.q[:, 0] + sim.q[:, 3]
            print(
                f"t={sim.time / 60:5.1f} min  peak eta={eta.max():6.3f} m  "
                f"coastal eta={eta[coast].max():6.3f} m  "
                f"dt={sim.dt_history[-1]:5.2f} s"
            )
            next_report += target / 8
    print(f"\n{sim.steps_run} steps, simulated {sim.time / 60:.1f} min")
    drift = abs(sim.total_mass() - mass0) / mass0
    print(f"mass conservation drift: {drift:.2e} (machine precision)")

    print("\nfree-surface map (ocean left, coast right; ~ = drawdown):")
    print(ascii_eta_map(sim))


if __name__ == "__main__":
    main()
